"""RSan: the simulated-concurrency race sanitizer.

The Phase III drain is *logically* concurrent — two devices with
private clocks race each other down a shared double-ended queue — but
it executes inside one deterministic discrete-event loop.  That makes
an entire class of bugs invisible to ordinary tests: a unit served
twice, a dequeue observing queue state that was not yet committed at
that simulated instant, a device clock silently running backwards, or
two in-flight units writing overlapping output row ranges.  Any of
those can still produce the *right matrix* on the schedule the test
happened to take, and the wrong one on the schedule a different
tie-break takes.

:data:`RSAN` is the module-level detector, wired into the event engine,
the workqueue, the Phase III scheduler, and the simulated devices the
same way :data:`repro.obs.metrics.METRICS` is wired into everything
else: every hook site guards with ``if RSAN.enabled:`` so a disabled
sanitizer costs one branch.  When enabled it maintains:

- a **per-slot state machine** (``queued -> inflight -> done``, with
  ``inflight -> queued`` on requeue) keyed by work-unit index, with the
  queue end of every pop recorded — double service, completion of a
  never-dequeued unit, and requeue to the wrong end are all flagged;
- **per-device clock floors** — a device's simulated clock may only
  move forward, except through a sanctioned :meth:`on_curtail`
  (crash/timeout/deadline truncation, which legitimately rewinds);
- **vector clocks** for the device actors plus the queue itself —
  a dequeue *joins* the queue's clock, a requeue *releases* into it,
  so every requeue->redequeue pair carries an explicit ordering edge;
  a dequeue whose slot has a staged commit the dequeuer does not
  happen-after is an uncommitted read;
- **in-flight row-range ownership** — the output rows of units
  simultaneously in flight on different devices must be disjoint
  (Phase IV merges them assuming exactly-once row production).

Violations are collected (and optionally raised, ``strict=True``) as
structured records; :meth:`RSan.report` returns the ``repro-rsan/1``
document the CLI writes.  This module imports only the error hierarchy
— never the hardware or scheduling layers it instruments — so every
instrumented module can import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.util.errors import SanitizerError

#: report schema identifier; bump on any structural change
SCHEMA = "repro-rsan/1"

#: slack for simulated-time comparisons (matches the event engine's)
_EPS = 1e-15

#: slot states
_QUEUED = "queued"
_INFLIGHT = "inflight"
_DONE = "done"

#: the vector-clock actor standing for the shared queue
_QUEUE_ACTOR = "queue"


class _RowsLike(Protocol):
    """The slice of the WorkUnit interface the sanitizer reads."""

    index: int

    @property
    def members(self) -> tuple:
        ...


@dataclass(frozen=True)
class Violation:
    """One observed concurrency violation."""

    #: RS001 slot state machine, RS002 uncommitted read, RS003 clock
    #: regression, RS004 requeue end/conservation, RS005 row overlap,
    #: RS006 engine time regression
    code: str
    message: str
    device: str = ""
    sim_t: float = 0.0

    def as_dict(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "device": self.device,
            "sim_t": self.sim_t,
        }


@dataclass
class _Slot:
    """Sanitizer-side shadow of one queue slot."""

    state: str = _QUEUED
    #: queue end the most recent pop used ("front"/"back"/"")
    popped_end: str = ""
    #: device currently holding the slot
    holder: str = ""
    #: simulated time and vector clock of the last requeue commit
    commit_t: float | None = None
    commit_vc: dict[str, int] = field(default_factory=dict)


def _vc_join(into: dict[str, int], other: dict[str, int]) -> None:
    """``into = join(into, other)`` componentwise-max, in place."""
    for actor, tick in other.items():
        if tick > into.get(actor, 0):
            into[actor] = tick


def _vc_leq(a: dict[str, int], b: dict[str, int]) -> bool:
    """Whether ``a`` happens-before-or-equals ``b``."""
    return all(tick <= b.get(actor, 0) for actor, tick in a.items())


class RSan:
    """The race sanitizer: per-slot ownership + vector clocks.

    Disabled by default.  :meth:`enable` arms it (optionally strict —
    every violation raises :class:`SanitizerError` at the offending
    hook); :meth:`disable` disarms without clearing the evidence, so a
    harness can run, disarm, then inspect :attr:`violations` /
    :meth:`report`.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.strict = False
        self.violations: list[Violation] = []
        self.checks = 0
        self.sanctioned_rewinds = 0
        self._slots: dict[int, _Slot] = {}
        #: row ids in flight per device: device -> (unit index, row set)
        self._inflight_rows: dict[str, list[tuple[int, set[int]]]] = {}
        #: sanctioned clock floor per device
        self._floors: dict[str, float] = {}
        #: vector clocks per actor (devices + the queue)
        self._vc: dict[str, dict[str, int]] = {}

    # -- lifecycle ---------------------------------------------------------
    def enable(self, *, strict: bool = False) -> None:
        """Arm the sanitizer with a clean evidence log."""
        self.reset()
        self.enabled = True
        self.strict = strict

    def disable(self) -> None:
        """Disarm; evidence collected so far stays readable."""
        self.enabled = False

    def reset(self) -> None:
        """Drop all evidence and shadow state."""
        self.violations.clear()
        self.checks = 0
        self.sanctioned_rewinds = 0
        self._slots.clear()
        self._inflight_rows.clear()
        self._floors.clear()
        self._vc.clear()

    # -- internals ---------------------------------------------------------
    def _violate(self, code: str, message: str, *, device: str = "",
                 sim_t: float = 0.0) -> None:
        record = Violation(code=code, message=message, device=device, sim_t=sim_t)
        self.violations.append(record)
        if self.strict:
            raise SanitizerError(
                f"{code}: {message}", code=code, device=device, sim_t=sim_t
            )

    def _clock(self, actor: str) -> dict[str, int]:
        return self._vc.setdefault(actor, {})

    def _tick(self, actor: str) -> None:
        clock = self._clock(actor)
        clock[actor] = clock.get(actor, 0) + 1

    def _check_floor(self, device: str, t: float) -> None:
        floor = self._floors.get(device)
        if floor is not None and t < floor - _EPS:
            self._violate(
                "RS003",
                f"device {device!r} simulated clock moved backwards: "
                f"{t} < floor {floor} without a sanctioned curtailment",
                device=device, sim_t=t,
            )
        if floor is None or t > floor:
            self._floors[device] = t

    # -- hooks: workqueue --------------------------------------------------
    def on_queue_build(self, units: list) -> None:
        """A fresh queue was assembled: register one slot per unit.

        Replaces any previous queue's shadow state (one queue drains at
        a time); evidence already collected is kept.
        """
        self._slots = {u.index: _Slot() for u in units}
        self._inflight_rows.clear()

    def on_dequeue(self, end: str, indices: tuple) -> None:
        """The queue served slots ``indices`` from ``end``."""
        self.checks += 1
        for index in indices:
            slot = self._slots.get(index)
            if slot is None:
                self._slots[index] = slot = _Slot()
            if slot.state != _QUEUED:
                self._violate(
                    "RS001",
                    f"unit {index} dequeued while {slot.state} "
                    f"(held by {slot.holder or 'nobody'}): served twice or "
                    "completed without a pop",
                )
            slot.state = _INFLIGHT
            slot.popped_end = end

    def on_restore(self, end: str, indices: tuple) -> None:
        """The queue took slots ``indices`` back at ``end`` (requeue)."""
        self.checks += 1
        for index in indices:
            slot = self._slots.get(index)
            if slot is None:
                self._violate(
                    "RS004", f"unit {index} restored but was never registered"
                )
                continue
            if slot.state != _INFLIGHT:
                self._violate(
                    "RS004",
                    f"unit {index} requeued while {slot.state}: only an "
                    "in-flight unit can go back",
                )
            elif slot.popped_end and slot.popped_end != end:
                self._violate(
                    "RS004",
                    f"unit {index} requeued at the {end!r} end but was "
                    f"popped from {slot.popped_end!r}: the ordering edge to "
                    "its original slot was dropped",
                )
            slot.state = _QUEUED
            slot.holder = ""

    # -- hooks: scheduler --------------------------------------------------
    def on_unit_start(self, device: str, unit: _RowsLike, t: float) -> None:
        """``device`` starts executing ``unit`` at simulated ``t``."""
        self.checks += 1
        self._check_floor(device, t)
        # acquire: the dequeue happens-after everything released into
        # the queue before it
        self._tick(device)
        _vc_join(self._clock(device), self._clock(_QUEUE_ACTOR))
        holder_vc = self._clock(device)
        for member in unit.members:
            slot = self._slots.get(member.index)
            if slot is None:
                continue
            slot.holder = device
            if slot.commit_t is not None:
                if t < slot.commit_t - _EPS:
                    self._violate(
                        "RS002",
                        f"unit {member.index} dequeued at t={t} but its "
                        f"requeue commits at t={slot.commit_t}: the dequeue "
                        "observes state not yet committed at that instant",
                        device=device, sim_t=t,
                    )
                elif not _vc_leq(slot.commit_vc, holder_vc):
                    self._violate(
                        "RS002",
                        f"unit {member.index} dequeued without "
                        "happening-after its requeue commit (missing "
                        "queue-release ordering edge)",
                        device=device, sim_t=t,
                    )
                slot.commit_t = None
                slot.commit_vc = {}
        # exactly-once row production: rows in flight on the peer
        # device(s) must be disjoint from this unit's
        rows = getattr(unit, "rows", None)
        if rows is not None:
            mine = {int(r) for r in rows}
            for other, held in self._inflight_rows.items():
                if other == device:
                    continue
                for other_index, other_rows in held:
                    clash = mine & other_rows
                    if clash:
                        self._violate(
                            "RS005",
                            f"unit {unit.index} on {device!r} overlaps "
                            f"{len(clash)} output row(s) (e.g. row "
                            f"{min(clash)}) with in-flight unit "
                            f"{other_index} on {other!r} and no ordering "
                            "edge between them",
                            device=device, sim_t=t,
                        )
            self._inflight_rows.setdefault(device, []).append((unit.index, mine))

    def on_unit_complete(self, device: str, unit: _RowsLike, t: float) -> None:
        """``device`` finished ``unit`` at simulated ``t``."""
        self.checks += 1
        self._check_floor(device, t)
        self._tick(device)
        for member in unit.members:
            slot = self._slots.get(member.index)
            if slot is None:
                continue
            if slot.state != _INFLIGHT:
                self._violate(
                    "RS001",
                    f"unit {member.index} completed while {slot.state}: "
                    "completion without a matching dequeue",
                    device=device, sim_t=t,
                )
            slot.state = _DONE
            slot.holder = ""
        self._release_rows(device, unit.index)

    def on_unit_requeue(self, device: str, unit: _RowsLike, t: float) -> None:
        """``device`` is giving ``unit`` back; the attempt was cut at
        simulated ``t`` (call *before* ``queue.requeue``)."""
        self.checks += 1
        # release: stamp the commit so a later dequeue must
        # happen-after it (in time and in the vector order)
        self._tick(device)
        _vc_join(self._clock(_QUEUE_ACTOR), self._clock(device))
        commit_vc = dict(self._clock(device))
        for member in unit.members:
            slot = self._slots.get(member.index)
            if slot is None:
                continue
            slot.commit_t = t
            slot.commit_vc = commit_vc
        self._release_rows(device, unit.index)

    def _release_rows(self, device: str, index: int) -> None:
        held = self._inflight_rows.get(device)
        if held:
            self._inflight_rows[device] = [
                entry for entry in held if entry[0] != index
            ]

    # -- hooks: devices & engine -------------------------------------------
    def on_device_busy(self, device: str, start: float, end: float) -> None:
        """``device`` occupied ``[start, end]``: its clock floor moves
        to ``end``, and starting before the floor (an activity stamped
        into already-elapsed simulated time) is a regression."""
        self.checks += 1
        self._check_floor(device, start)
        self._floors[device] = max(self._floors.get(device, end), end)

    def on_curtail(self, device: str, at: float) -> None:
        """A sanctioned truncation rewound ``device`` to ``at`` (crash,
        timeout, or deadline cut an in-flight activity short)."""
        self.sanctioned_rewinds += 1
        self._floors[device] = at

    def on_engine_event(self, t: float, now: float) -> None:
        """The event loop is about to run an event at ``t`` with the
        engine clock at ``now``."""
        self.checks += 1
        if t < now - _EPS:
            self._violate(
                "RS006",
                f"event loop dispatched t={t} after reaching t={now}: "
                "global simulated time regressed",
                sim_t=t,
            )

    # -- reporting ---------------------------------------------------------
    @property
    def ok(self) -> bool:
        return not self.violations

    def counters(self) -> dict:
        by_code: dict[str, int] = {}
        for v in self.violations:
            by_code[v.code] = by_code.get(v.code, 0) + 1
        return {
            "checks": self.checks,
            "violations": len(self.violations),
            "sanctioned_rewinds": self.sanctioned_rewinds,
            "by_code": dict(sorted(by_code.items())),
        }

    def report(self) -> dict:
        """The ``repro-rsan/1`` document (JSON-able, sorted, stable)."""
        return {
            "schema": SCHEMA,
            "ok": self.ok,
            "counters": self.counters(),
            "violations": [v.as_dict() for v in self.violations],
        }


#: the shared library-wide sanitizer; disarmed until a harness enables it
RSAN = RSan()
