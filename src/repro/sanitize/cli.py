"""The ``python -m repro sanitize`` subcommand.

Runs the schedule-perturbation harness (baseline + N seeded jittered
schedules, each under the RSan race detector) on a named input and
reports whether every schedule produced bit-identical results and
traces with zero sanitizer violations.

Exit codes (CI-friendly):

- **0** — all schedules bit-identical, no violations;
- **1** — a mismatch or a sanitizer violation (the report lists them);
- **2** — usage problems (unknown workload/dataset).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.sanitize.harness import DEFAULT_SCHEDULES, perturb_schedules


def add_sanitize_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``sanitize`` options to an (sub)parser."""
    parser.add_argument(
        "dataset",
        help="input to multiply (A @ A): a bench workload name "
             "(e.g. powerlaw-sm) or a Table I dataset name",
    )
    parser.add_argument(
        "--schedules", type=int, default=DEFAULT_SCHEDULES, metavar="N",
        help=f"perturbed schedules to explore (default {DEFAULT_SCHEDULES})",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="seed for the schedule jitter (default: library default seed)",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="Table I dataset size scale in (0, 1]; ignored for workloads",
    )
    parser.add_argument(
        "--cpu-rows", type=int, default=None, metavar="ROWS",
        help="CPU work-unit size (default: sized so the queue has ~12 units)",
    )
    parser.add_argument(
        "--gpu-rows", type=int, default=None, metavar="ROWS",
        help="GPU work-unit size (default: 4x the CPU size)",
    )
    parser.add_argument(
        "--report", metavar="PATH", default=None,
        help="write the repro-sanitize/1 JSON report to PATH",
    )


def _load_operands(name: str, scale: float | None) -> tuple | None:
    """Resolve ``name`` to an ``(A, B)`` pair: workloads first, then
    the Table I registry."""
    from repro.bench.workloads import get_workload

    try:
        return get_workload(name).build()
    except KeyError:
        pass
    from repro.analysis import experiment_setup
    from repro.scalefree import DATASET_NAMES

    if name not in DATASET_NAMES:
        return None
    setup = experiment_setup(name, scale=scale)
    return setup.a, setup.b


def render_report(report: dict) -> str:
    """Human-oriented summary of one perturbation report."""
    lines = [
        f"sanitize {report['label']}: baseline + {report['schedules']} "
        f"perturbed schedule(s), unit rows "
        f"cpu={report['unit_rows']['cpu']} gpu={report['unit_rows']['gpu']}",
        f"  result {report['baseline']['result_fingerprint'][:16]}… "
        f"({report['baseline']['nnz']} nnz), "
        f"trace {report['baseline']['trace_fingerprint'][:16]}…",
        f"  rsan: {report['rsan']['checks']} check(s), "
        f"{len(report['rsan']['violations'])} violation(s)",
    ]
    for m in report["mismatches"]:
        lines.append(
            f"  MISMATCH [{m['schedule']}] {m['kind']}: "
            f"{m['got'][:16]}… != {m['expected'][:16]}…"
        )
    for v in report["rsan"]["violations"]:
        lines.append(
            f"  VIOLATION {v['code']} ({v['device'] or 'engine'} "
            f"t={v['sim_t']:g}): {v['message']}"
        )
    lines.append(
        "ok: all schedules bit-identical, no violations"
        if report["ok"]
        else "FAILED: schedule-dependent behaviour detected"
    )
    return "\n".join(lines)


def run_sanitize_command(args: argparse.Namespace) -> int:
    """Execute ``repro sanitize`` for parsed arguments."""
    if args.schedules < 1:
        print("repro sanitize: --schedules must be >= 1", file=sys.stderr)
        return 2
    operands = _load_operands(args.dataset, args.scale)
    if operands is None:
        from repro.bench.workloads import iter_workloads
        from repro.scalefree import DATASET_NAMES

        names = sorted(
            {w.name for w in iter_workloads()} | set(DATASET_NAMES)
        )
        print(
            f"repro sanitize: unknown dataset {args.dataset!r}; "
            f"choose from {', '.join(names)}",
            file=sys.stderr,
        )
        return 2
    a, b = operands
    report = perturb_schedules(
        a, b,
        schedules=args.schedules,
        seed=args.seed,
        cpu_rows=args.cpu_rows,
        gpu_rows=args.gpu_rows,
        label=args.dataset,
    )
    print(render_report(report))
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report written to {args.report}")
    return 0 if report["ok"] else 1


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.sanitize.cli``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro sanitize",
        description="Schedule-perturbation race sanitizer for the "
                    "simulated Phase III drain.",
    )
    add_sanitize_arguments(parser)
    return run_sanitize_command(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
