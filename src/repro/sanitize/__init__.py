"""Runtime race sanitizer for the simulated concurrency ("RSan").

Two prongs, both aimed at schedule-dependent bugs the ordinary test
suite cannot see because it only ever observes one schedule:

- :mod:`repro.sanitize.rsan` — the always-compiled-in, off-by-default
  race detector.  Hooks in the event engine, workqueue, Phase III
  scheduler, and simulated devices (one ``if RSAN.enabled:`` branch
  each) maintain per-slot ownership, per-device clock floors, and
  vector clocks, flagging double-served units, uncommitted-state
  dequeues, unsanctioned clock rewinds, wrong-end requeues, and
  overlapping in-flight output rows.
- :mod:`repro.sanitize.harness` — the schedule-perturbation harness
  behind ``python -m repro sanitize``: baseline + N seeded runs with
  jittered equal-time tie-breaks, asserting bit-identical results and
  canonical traces across all of them.
"""

from repro.sanitize.harness import (
    DEFAULT_SCHEDULES,
    perturb_schedules,
    result_fingerprint,
    run_once,
    trace_fingerprint,
)
from repro.sanitize.rsan import RSAN, RSan, Violation

__all__ = [
    "DEFAULT_SCHEDULES",
    "RSAN",
    "RSan",
    "Violation",
    "perturb_schedules",
    "result_fingerprint",
    "run_once",
    "trace_fingerprint",
]
