"""EVT001 — structured events only through ``repro.obs.events``.

The event log's guarantees (schema tag, monotonically numbered
records, one clock-stamping site, byte-stable encoding) hold only if
every record passes through :class:`repro.obs.events.EventLog`.  A
hand-rolled ``json.dump`` or ``fh.write(json.dumps(...))`` inside the
instrumented packages would mint records with no ``seq``, no schema,
and its own timestamp convention — unparseable by the run-table
aggregator and invisible to the ``enabled`` gate.  So JSON writes are
confined to the sanctioned observability/serialisation modules.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.asthelpers import import_map, qualified_call_name
from repro.lint.base import ModuleContext, RawFinding, Rule, register

#: packages whose run-time records must flow through repro.obs.events
_INSTRUMENTED = ("repro.jobs", "repro.faults", "repro.hetero",
                 "repro.core", "repro.hardware", "repro.service")

#: sanctioned serialisation module (CKP001's versioned checkpoint I/O
#: legitimately encodes JSON headers inside the snapshot format)
_SANCTIONED = ("repro.jobs.snapshot",)


def _contains_json_dumps(node: ast.expr, imports: dict) -> bool:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and qualified_call_name(sub, imports) == "json.dumps"
        ):
            return True
    return False


@register
class EVT001(Rule):
    """Hand-rolled JSON/JSONL writes in instrumented code.

    The event log's guarantees — strictly increasing ``seq`` numbers,
    one schema, sorted-key compact records, a detectable truncation —
    only hold if every record flows through
    :data:`repro.obs.events.EVENTS`.  A hand-rolled ``json.dump`` in
    an instrumented package produces a second, unversioned stream the
    run-table aggregator cannot ingest and the header cannot vouch
    for.
    """

    id = "EVT001"
    description = (
        "run events in instrumented packages (repro.jobs/faults/hetero/"
        "core/hardware/service) must be emitted through repro.obs.events — no "
        "direct json.dump(...) and no fh.write(json.dumps(...)) outside "
        "the sanctioned snapshot module"
    )
    example_violation = (
        "# in repro/jobs/...\n"
        "fh.write(json.dumps({'event': 'retry', 'unit': i}) + '\\n')"
    )
    example_fix = (
        "from repro.obs.events import EVENTS\n"
        "if EVENTS.enabled:\n"
        "    EVENTS.emit('unit_retry', unit=i)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        if not ctx.in_package(*_INSTRUMENTED) or ctx.in_package(*_SANCTIONED):
            return
        imports = import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if qualified_call_name(node, imports) == "json.dump":
                yield RawFinding(
                    node.lineno, node.col_offset,
                    "direct json.dump(...) in instrumented code; emit "
                    "structured records through repro.obs.events.EVENTS "
                    "(or export snapshots via repro.obs.export)",
                )
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "write"
                and any(_contains_json_dumps(arg, imports) for arg in node.args)
            ):
                yield RawFinding(
                    node.lineno, node.col_offset,
                    "hand-rolled JSONL write (`.write(json.dumps(...))`) in "
                    "instrumented code; emit structured records through "
                    "repro.obs.events.EVENTS so they carry the schema tag, "
                    "seq numbering, and clock stamps",
                )
