"""DET001/DET002 — sources of nondeterminism.

The reproduction's claims rest on bit-for-bit re-runnable simulations:
every random draw must flow through :mod:`repro.util.rng` and nothing
order-sensitive may iterate an unordered container.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.asthelpers import (
    dotted_name,
    import_map,
    iter_loop_iterables,
    qualified_call_name,
)
from repro.lint.base import ModuleContext, RawFinding, Rule, register

#: modules allowed to touch host randomness/clocks directly: the rng
#: plumbing itself and the observability layer (which measures real
#: wall time by design)
EXEMPT_PACKAGES = ("repro.util.rng", "repro.obs", "repro.lint")

#: simulation packages where host-clock use is CLK001's (more specific)
#: business — DET001 leaves ``time`` to it there to avoid double reports
SIM_PACKAGES = (
    "repro.core",
    "repro.kernels",
    "repro.costmodel",
    "repro.hetero",
    "repro.hardware",
    "repro.service",
)

#: numpy.random functions that mutate the hidden global RandomState
_NP_GLOBAL_STATE = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample",
    "ranf", "sample", "choice", "shuffle", "permutation", "bytes",
    "uniform", "normal", "standard_normal", "poisson", "binomial",
    "exponential", "geometric", "zipf", "pareto",
})


def _is_unseeded_default_rng(call: ast.Call, qual: str) -> bool:
    if not qual.endswith("random.default_rng"):
        return False
    if call.args or call.keywords:
        # seeded (or generator-threaded) construction is the sanctioned
        # path's job, but it is at least deterministic
        return False
    return True


@register
class DET001(Rule):
    """Host randomness/clock access outside the sanctioned modules.

    Every figure in the reproduction must be re-runnable bit-for-bit:
    a stray ``random.random()`` or unseeded Generator makes the run
    depend on process state, and a host ``time`` import in analysis
    code smuggles machine speed into what should be a pure simulation.
    The sanctioned path is one seed, normalised once, threaded
    explicitly.
    """

    id = "DET001"
    description = (
        "no `random`/`time`/unseeded `np.random` outside repro.util.rng "
        "and repro.obs — thread seeds through repro.util.rng.normalise"
    )
    example_violation = (
        "import random\n"
        "jitter = random.random()          # process-state dependent\n"
        "gen = np.random.default_rng()     # unseeded"
    )
    example_fix = (
        "from repro.util.rng import resolve_rng\n"
        "gen = resolve_rng(seed)           # one seed, explicit, replayable\n"
        "jitter = gen.random()"
    )

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        if ctx.in_package(*EXEMPT_PACKAGES):
            return
        time_is_clk001s = ctx.in_package(*SIM_PACKAGES)
        imports = import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".", 1)[0]
                    if top == "random":
                        yield RawFinding(
                            node.lineno, node.col_offset,
                            "import of the stdlib `random` module; draw through "
                            "repro.util.rng instead",
                        )
                    elif top == "time" and not time_is_clk001s:
                        yield RawFinding(
                            node.lineno, node.col_offset,
                            "import of the host `time` module outside repro.obs; "
                            "simulated durations come from the cost models",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                top = node.module.split(".", 1)[0]
                if top == "random":
                    yield RawFinding(
                        node.lineno, node.col_offset,
                        "import from the stdlib `random` module; draw through "
                        "repro.util.rng instead",
                    )
                elif top == "time" and not time_is_clk001s:
                    yield RawFinding(
                        node.lineno, node.col_offset,
                        "import from the host `time` module outside repro.obs; "
                        "simulated durations come from the cost models",
                    )
            elif isinstance(node, ast.Call):
                qual = qualified_call_name(node, imports)
                if qual is None:
                    continue
                if _is_unseeded_default_rng(node, qual):
                    yield RawFinding(
                        node.lineno, node.col_offset,
                        "unseeded numpy Generator; pass a seed or normalise "
                        "through repro.util.rng",
                    )
                elif (
                    qual.startswith(("numpy.random.", "np.random."))
                    and qual.rsplit(".", 1)[-1] in _NP_GLOBAL_STATE
                ):
                    yield RawFinding(
                        node.lineno, node.col_offset,
                        "legacy numpy global-state RNG call "
                        f"`{dotted_name(node.func)}`; use a Generator from "
                        "repro.util.rng",
                    )


@register
class DET002(Rule):
    """Iteration order of unordered containers leaking into schedules.

    Python sets hash-order their elements, and that order varies with
    insertion history (and, for strings, the interpreter's hash seed).
    A ``for`` loop over a set that schedules events, accumulates
    floats, or appends to a queue bakes that accidental order into
    results.  This syntactic rule flags the loop form itself; its
    interprocedural sibling ORD001 tracks the order through helper
    calls into real sinks.
    """

    id = "DET002"
    description = (
        "no iteration over set()/frozenset()/dict.keys() whose order can "
        "leak into simulated schedules — wrap in sorted(...)"
    )
    example_violation = (
        "for kind in {'cpu', 'gpu'} - dead:\n"
        "    engine.schedule(t, steps[kind])   # hash-order scheduling"
    )
    example_fix = (
        "for kind in sorted({'cpu', 'gpu'} - dead):\n"
        "    engine.schedule(t, steps[kind])   # deterministic order"
    )

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        for it in iter_loop_iterables(ctx.tree):
            if isinstance(it, ast.Set):
                yield RawFinding(
                    it.lineno, it.col_offset,
                    "iteration over a set literal has no defined order; "
                    "wrap in sorted(...)",
                )
            elif isinstance(it, ast.Call):
                func = it.func
                if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                    yield RawFinding(
                        it.lineno, it.col_offset,
                        f"iteration over {func.id}(...) has no defined order; "
                        "wrap in sorted(...)",
                    )
                elif isinstance(func, ast.Attribute) and func.attr == "keys":
                    yield RawFinding(
                        it.lineno, it.col_offset,
                        "iteration over .keys(); iterate the mapping itself "
                        "or wrap in sorted(...) for an explicit order",
                    )
