"""CLK001 — clock-domain hygiene.

The simulator maintains two clocks (DESIGN.md): the **simulated**
platform clock that the paper's figures report, and the **host wall
clock** the observability layer measures.  Mixing them corrupts both:
a `perf_counter()` charged to the simulated clock makes results
machine-dependent, and a simulated duration written into a span's wall
fields breaks the flame-chart's arithmetic.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.asthelpers import import_map, qualified_call_name
from repro.lint.base import ModuleContext, RawFinding, Rule, register

#: packages where only the simulated clock may advance time
SIM_PACKAGES = (
    "repro.core",
    "repro.kernels",
    "repro.costmodel",
    "repro.hetero",
    "repro.hardware",
    "repro.service",
)

#: host wall-clock entry points
_HOST_CLOCK_CALLS = frozenset({
    "time.time", "time.perf_counter", "time.monotonic",
    "time.process_time", "time.thread_time", "time.time_ns",
    "time.perf_counter_ns", "time.monotonic_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
})

#: attributes that carry simulated-clock values
_SIM_ATTRS = frozenset({"sim_start", "sim_end", "sim_duration_s"})

#: span fields that must only ever hold host wall-clock values
_WALL_FIELDS = frozenset({"wall_start", "wall_end"})


def _mentions_sim_value(expr: ast.expr) -> bool:
    """Whether an expression reads an identifiable simulated-clock
    value (a ``sim_*`` span attribute or a trace ``makespan()``)."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and node.attr in _SIM_ATTRS:
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "makespan"
        ):
            return True
    return False


@register
class CLK001(Rule):
    """Host clocks in simulation code; sim values in wall-clock fields.

    The repo runs two clocks (DESIGN.md): the simulated platform clock
    the paper's figures report, and the host wall clock the
    observability layer measures.  A ``perf_counter()`` charged into
    simulation code makes "modelled" times machine-dependent; a
    simulated duration written into a span's ``wall_*`` field corrupts
    the flame chart.  This rule polices both directions syntactically,
    per file; CLK002 extends it across function boundaries.
    """

    id = "CLK001"
    description = (
        "no host wall-clock calls in core/kernels/costmodel/hetero/"
        "hardware; simulated-clock values must not flow into host-clock "
        "span fields"
    )
    example_violation = (
        "# in repro/hetero/...\n"
        "import time\n"
        "start = time.perf_counter()       # host clock in simulation code"
    )
    example_fix = (
        "start = device.clock              # the simulated clock\n"
        "device.busy('III', label, cost_model_seconds)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        in_sim = ctx.in_package(*SIM_PACKAGES)
        imports = import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if in_sim and isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".", 1)[0] in ("time", "datetime"):
                        yield RawFinding(
                            node.lineno, node.col_offset,
                            f"host clock module `{alias.name}` imported in "
                            "simulation code; durations must come from the "
                            "cost models / simulated clock",
                        )
            elif in_sim and isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".", 1)[0] in ("time", "datetime"):
                    yield RawFinding(
                        node.lineno, node.col_offset,
                        f"host clock module `{node.module}` imported in "
                        "simulation code; durations must come from the "
                        "cost models / simulated clock",
                    )
            elif isinstance(node, ast.Call):
                qual = qualified_call_name(node, imports)
                if in_sim and qual in _HOST_CLOCK_CALLS:
                    yield RawFinding(
                        node.lineno, node.col_offset,
                        f"host wall-clock call `{qual}` in simulation code; "
                        "charge time to the simulated clock instead",
                    )
                # sim values into wall_* keyword args (any package)
                for kw in node.keywords:
                    if kw.arg in _WALL_FIELDS and _mentions_sim_value(kw.value):
                        yield RawFinding(
                            kw.value.lineno, kw.value.col_offset,
                            f"simulated-clock value passed as `{kw.arg}=`; "
                            "wall fields take host perf_counter values only "
                            "(use Span.set_sim for the simulated interval)",
                        )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr in _WALL_FIELDS
                        and _mentions_sim_value(node.value)
                    ):
                        yield RawFinding(
                            node.lineno, node.col_offset,
                            f"simulated-clock value assigned to `.{target.attr}`; "
                            "wall fields take host perf_counter values only "
                            "(use Span.set_sim for the simulated interval)",
                        )
