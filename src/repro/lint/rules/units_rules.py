"""UNIT001 — unit-conversion helpers stay at reporting boundaries.

Inside the cost models and kernels the invariant is *raw seconds and
bytes*: every formula adds and divides SI quantities, and a stray
``seconds_to_ms`` in the middle of one silently produces values a
thousand times off.  The :mod:`repro.util.units` helpers exist for
tables and log lines only.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.asthelpers import dotted_name
from repro.lint.base import ModuleContext, RawFinding, Rule, register

#: hot-path packages where raw seconds/bytes are the invariant
HOT_PACKAGES = ("repro.costmodel", "repro.kernels")

#: the repro.util.units conversion/formatting helpers
_CONVERSIONS = frozenset({
    "seconds_to_ms", "ms_to_seconds", "bytes_to_mb",
    "human_time", "human_bytes",
})


@register
class UNIT001(Rule):
    """Unit conversions banned in cost-model/kernel hot paths.

    Cost models and kernels compute in one fixed unit system (raw
    seconds, bytes, flops); the pretty-printing helpers in
    :mod:`repro.util.units` exist for the reporting boundary.  A
    conversion inside a hot path is either dead weight or — worse — a
    sign two unit systems are mixing mid-computation, which is how a
    GB/s constant ends up divided by 1e6 twice.
    """

    id = "UNIT001"
    description = (
        "repro.util.units conversion helpers are reporting-boundary "
        "only — banned in costmodel/ and kernels/ where raw "
        "seconds/bytes are the invariant"
    )
    example_violation = (
        "# in repro/costmodel/...\n"
        "bw = to_gib_per_s(spec.mem_bandwidth)   # converted mid-model"
    )
    example_fix = (
        "bw = spec.mem_bandwidth          # stay in bytes/second\n"
        "# convert once, at the report: human_bytes(bw) in the renderer"
    )

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        if not ctx.in_package(*HOT_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = dotted_name(node.func)
            if qual is None:
                continue
            leaf = qual.rsplit(".", 1)[-1]
            if leaf in _CONVERSIONS:
                yield RawFinding(
                    node.lineno, node.col_offset,
                    f"unit conversion `{leaf}` in a hot path; keep raw "
                    "seconds/bytes here and convert at the reporting "
                    "boundary (tables, renderers, exporters)",
                )
