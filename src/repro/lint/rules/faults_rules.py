"""FLT001 — fault-injection randomness hygiene.

The chaos suite's guarantee is that one ``(spec, seed)`` pair replays
the exact same fault schedule; that only holds if every probabilistic
draw in :mod:`repro.faults` flows through the generator the injector
derives from its spec's seed via :func:`repro.util.rng.resolve_rng`.
A privately constructed numpy Generator — even a *seeded* one, which
DET001 tolerates elsewhere — would split the fault schedule across two
seed domains and silently break deterministic replay.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.asthelpers import import_map, qualified_call_name
from repro.lint.base import ModuleContext, RawFinding, Rule, register

#: the one module allowed to build Generators for everyone
_SANCTIONED = "repro.util.rng"

#: constructors that mint a numpy Generator directly
_GENERATOR_FACTORIES = (
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.RandomState",
)


@register
class FLT001(Rule):
    """Direct numpy Generator construction inside ``repro.faults``.

    Chaos runs must be replayable: a crash found under fault schedule
    seed 7 has to reproduce under seed 7, byte for byte.  That only
    holds if every probabilistic fault draw flows from the injector's
    single resolved generator — a second, locally constructed
    Generator (even seeded) forks the stream and silently decouples
    the replayed schedule from the recorded one.
    """

    id = "FLT001"
    description = (
        "no direct numpy Generator construction in repro.faults — even "
        "seeded; derive the injector's generator through "
        "repro.util.rng.resolve_rng so one seed replays the whole "
        "fault schedule"
    )
    example_violation = (
        "# in repro/faults/...\n"
        "gen = np.random.default_rng(self.spec.seed)   # forks the stream"
    )
    example_fix = (
        "from repro.util.rng import resolve_rng\n"
        "gen = resolve_rng(self.spec.seed)  # the one sanctioned stream"
    )

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        if not ctx.in_package("repro.faults"):
            return
        imports = import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = qualified_call_name(node, imports)
            if qual is None:
                continue
            # resolve the np alias the way the import map records it
            if qual.startswith("np.random."):
                qual = "numpy." + qual.split(".", 1)[1]
            if qual in _GENERATOR_FACTORIES:
                yield RawFinding(
                    node.lineno, node.col_offset,
                    f"direct Generator construction `{qual}` in the faults "
                    f"package; normalise the spec seed through "
                    f"{_SANCTIONED}.resolve_rng so the fault schedule "
                    "replays from one seed",
                )
