"""CKP001 — checkpoint serialisation hygiene.

The durability layer's resume guarantee rests on every checkpoint being
a versioned, digest-verified, atomically-replaced
:mod:`repro.jobs.snapshot` file.  An ad-hoc ``pickle.dump`` or bare
``numpy.save`` inside :mod:`repro.jobs` would create state files with no
schema tag, no integrity check, and (for pickle) arbitrary
code-execution on load — a corrupt or stale file would then resume
*silently wrong* instead of raising
:class:`~repro.util.errors.CheckpointCorrupt`.  So serialisation
primitives are confined to the one sanctioned module.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.asthelpers import import_map, qualified_call_name
from repro.lint.base import ModuleContext, RawFinding, Rule, register

#: the one module allowed to touch serialisation primitives
_SANCTIONED = "repro.jobs.snapshot"

#: object-serialisation modules banned outright in repro.jobs (they can
#: execute code on load and have no schema/integrity story)
_BANNED_MODULES = ("pickle", "cPickle", "dill", "marshal", "shelve")

#: array persistence calls that bypass the versioned snapshot format
_BANNED_CALLS = (
    "numpy.save",
    "numpy.savez",
    "numpy.savez_compressed",
    "numpy.load",
    "numpy.ndarray.tofile",
    "numpy.fromfile",
)


@register
class CKP001(Rule):
    """Ad-hoc state serialisation inside ``repro.jobs``.

    A checkpoint that a newer library version cannot read is data
    loss; a checkpoint that deserialises arbitrary objects (pickle) is
    a liability.  The ``repro.jobs.snapshot`` format exists to carry a
    schema tag, content digests, and an atomic-replace write protocol
    — every byte of durable job state must go through it so resume
    paths have exactly one format to validate.
    """

    id = "CKP001"
    description = (
        "checkpoint state in repro.jobs must be serialised only through "
        "the versioned repro.jobs.snapshot format (schema tag, sha256 "
        "digests, atomic replace) — no pickle/marshal/shelve and no "
        "direct numpy save/load elsewhere in the package"
    )
    example_violation = (
        "# in repro/jobs/...\n"
        "with open(path, 'wb') as fh:\n"
        "    pickle.dump(state, fh)        # unversioned, unverifiable"
    )
    example_fix = (
        "from repro.jobs.snapshot import write_snapshot\n"
        "write_snapshot(path, state)       # schema tag + digests + atomic"
    )

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        if not ctx.in_package("repro.jobs") or ctx.in_package(_SANCTIONED):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _BANNED_MODULES:
                        yield RawFinding(
                            node.lineno, node.col_offset,
                            f"import of object-serialisation module "
                            f"`{alias.name}` in repro.jobs; checkpoint I/O "
                            f"must go through {_SANCTIONED}",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in _BANNED_MODULES:
                    yield RawFinding(
                        node.lineno, node.col_offset,
                        f"import from `{node.module}` in repro.jobs; "
                        f"checkpoint I/O must go through {_SANCTIONED}",
                    )
        imports = import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = qualified_call_name(node, imports)
            if qual is None:
                continue
            if qual.startswith("np."):
                qual = "numpy." + qual.split(".", 1)[1]
            if qual in _BANNED_CALLS:
                yield RawFinding(
                    node.lineno, node.col_offset,
                    f"direct array persistence `{qual}` in repro.jobs "
                    f"bypasses the versioned checkpoint format; write and "
                    f"read checkpoints only via {_SANCTIONED}",
                )
