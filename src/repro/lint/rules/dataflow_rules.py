"""CLK002 / DET003 / ORD001 — the project-scoped dataflow rules.

These rules have ``scope = "project"``: the fast per-file engine skips
them and the interprocedural deep pass (:mod:`repro.lint.dataflow`,
``repro check --deep``) produces their findings.  The classes here are
the registry entries — id, severity, rationale, ``--explain`` examples
— so listing, explaining, suppressing, and baselining work identically
for per-file and project-wide rules.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.base import ModuleContext, RawFinding, Rule, register


class _ProjectRule(Rule):
    """A rule whose findings come from the deep pass, not ``check()``."""

    scope = "project"

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        return iter(())


@register
class CLK002(_ProjectRule):
    """Interprocedural clock-domain hygiene.

    CLK001 flags a ``perf_counter()`` call *in* simulation code, but a
    host timestamp can be laundered: returned from a helper in a
    non-simulation module, stored, and only then assigned to a device
    ``.clock``, passed as ``sim_t=``, fed to ``busy()``/``set_sim()``/
    ``wait_until()``/``schedule()``, or written into a ``TraceEvent``
    interval.  Any host-clock value reaching a simulated-time sink
    makes results machine-dependent — the simulated timeline silently
    absorbs wall-clock jitter, so two runs of the same input disagree.
    The deep pass tracks clock taint through assignments, arithmetic,
    and call chains (helper summaries), project-wide.
    """

    id = "CLK002"
    description = (
        "interprocedural: host wall-clock values must never reach a "
        "simulated-time field, device clock, engine schedule, or the Trace "
        "— through any chain of helpers"
    )
    example_violation = (
        "# helpers.py (not a simulation module)\n"
        "def host_now():\n"
        "    return time.perf_counter()\n"
        "\n"
        "# scheduler.py\n"
        "from helpers import host_now\n"
        "device.clock = host_now()   # wall time enters the sim timeline"
    )
    example_fix = (
        "# durations come from the cost models; the device clock only\n"
        "# ever advances by modelled simulated time\n"
        "device.busy(\"III\", label, cost_model_seconds(stats))"
    )


@register
class DET003(_ProjectRule):
    """RNG-domain taint: generator origin and order-dependent draws.

    DET001 flags *unseeded* construction; DET003 is stricter and
    interprocedural: **every** numpy Generator must originate in
    :mod:`repro.util.rng` (one seeding discipline, one place to audit),
    and a generator — sanctioned or not — must never be drawn from
    inside iteration over an unordered container, because the draw
    *sequence* then depends on set ordering even if every drawn value
    is eventually sorted.  The deep pass tracks generator values
    through helper returns and module boundaries.
    """

    id = "DET003"
    description = (
        "interprocedural: every numpy Generator must originate in "
        "repro.util.rng and must not be drawn from inside unordered "
        "iteration"
    )
    example_violation = (
        "def fresh_gen():\n"
        "    return np.random.default_rng(99)   # private seeding discipline\n"
        "\n"
        "gen = fresh_gen()\n"
        "for key in set(keys):\n"
        "    out.append(gen.normal())   # draw order follows set order"
    )
    example_fix = (
        "from repro.util.rng import resolve_rng\n"
        "\n"
        "gen = resolve_rng(seed)\n"
        "for key in sorted(set(keys)):\n"
        "    out.append(gen.normal())"
    )


@register
class ORD001(_ProjectRule):
    """Unordered iteration order leaking into order-sensitive state.

    DET002 flags the direct syntactic forms (``for x in set(...)``),
    but set ordering also leaks through a variable, a set union
    (``parked | dead``), or a helper that returns a set.  When such an
    iteration feeds a float accumulation (float addition is not
    associative), a container insertion, or a workqueue operation, the
    result or schedule depends on hash ordering.  The deep pass tracks
    "unordered" taint through assignments, set algebra, and function
    summaries, and flags only iterations whose order actually reaches
    an order-sensitive sink — ``sorted(...)`` launders the taint.
    Python dicts iterate in insertion order and are treated as ordered.
    """

    id = "ORD001"
    description = (
        "interprocedural: set/frozenset iteration order must not flow "
        "into float accumulation or container/workqueue insertion — "
        "wrap the iterable in sorted(...)"
    )
    example_violation = (
        "def active(front, back):\n"
        "    return set(front) | set(back)\n"
        "\n"
        "total = 0.0\n"
        "for r in active(front, back):\n"
        "    total += weights[r]    # float sum follows set ordering"
    )
    example_fix = (
        "total = 0.0\n"
        "for r in sorted(active(front, back)):\n"
        "    total += weights[r]"
    )
