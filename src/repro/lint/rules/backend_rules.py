"""BKD001 — kernel dispatch goes through the backend registry.

The algorithm layers (:mod:`repro.core`, :mod:`repro.hetero`) must not
import the raw kernel implementation modules
(``repro.kernels.hash_acc`` / ``repro.kernels.spa`` /
``repro.kernels.esc``) directly.  The package-level dispatchers in
:mod:`repro.kernels` resolve implementations through the
:mod:`repro.backends` registry — that is what makes a run's backend
selection (and its checkpoint fingerprint, bench row, and
``backend_selected`` event) truthful.  A direct import pins one
implementation behind the registry's back: the run would *report* one
backend and *execute* another, and the cross-backend equivalence and
resume-refusal guarantees would silently not apply.

The sanctioned importers are the backends package itself (it binds the
raw implementations into :class:`~repro.backends.registry.Backend`
entries) and the kernel package's own modules.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.base import ModuleContext, RawFinding, Rule, register

#: packages that must dispatch through the registry
_POLICED = ("repro.core", "repro.hetero")

#: raw implementation modules the dispatchers wrap
_RAW_KERNEL_MODULES = (
    "repro.kernels.hash_acc",
    "repro.kernels.spa",
    "repro.kernels.esc",
)


@register
class BKD001(Rule):
    """Direct raw-kernel import above the backend registry.

    ``repro.core`` / ``repro.hetero`` code that imports
    ``repro.kernels.hash_acc``, ``repro.kernels.spa``, or
    ``repro.kernels.esc`` bypasses backend selection: the registry can
    no longer substitute the reference or JIT implementation, the
    ``backend`` recorded in fingerprints/bench rows stops describing
    what actually ran, and cross-backend checkpoint refusal loses its
    meaning.  Dispatch through :mod:`repro.kernels` (or resolve a
    :class:`~repro.backends.registry.Backend` explicitly).
    """

    id = "BKD001"
    description = (
        "repro.core / repro.hetero must not import the raw kernel "
        "implementation modules (repro.kernels.hash_acc / .spa / .esc) "
        "directly; dispatch through the repro.kernels entry points so "
        "the repro.backends registry controls which implementation runs"
    )
    example_violation = (
        "# in repro/hetero/...\n"
        "from repro.kernels.esc import esc_multiply   # pins one impl\n"
        "out = esc_multiply(a, b)"
    )
    example_fix = (
        "from repro.kernels import esc_multiply       # registry-dispatched\n"
        "out = esc_multiply(a, b, backend=spec)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        if not any(ctx.in_package(pkg) for pkg in _POLICED):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in _RAW_KERNEL_MODULES:
                        yield RawFinding(
                            node.lineno, node.col_offset,
                            f"direct import of raw kernel module "
                            f"`{alias.name}` above the backend registry; "
                            f"dispatch through repro.kernels instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if node.level == 0 and module in _RAW_KERNEL_MODULES:
                    yield RawFinding(
                        node.lineno, node.col_offset,
                        f"direct import from raw kernel module "
                        f"`{module}` above the backend registry; "
                        f"dispatch through repro.kernels instead",
                    )
