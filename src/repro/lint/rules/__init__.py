"""Domain rules for the simulation-soundness checker.

Importing this package populates :data:`repro.lint.base.REGISTRY`:

- **DET001/DET002** (:mod:`~repro.lint.rules.determinism`) — host
  randomness and unordered-iteration leaks;
- **CLK001** (:mod:`~repro.lint.rules.clock`) — clock-domain hygiene;
- **MET001/MET002** (:mod:`~repro.lint.rules.metrics_rules`) — metric
  catalog membership and hot-path gating;
- **UNIT001** (:mod:`~repro.lint.rules.units_rules`) — unit conversions
  at reporting boundaries only;
- **FLT001** (:mod:`~repro.lint.rules.faults_rules`) — fault-injection
  randomness must flow through ``repro.util.rng``;
- **CKP001** (:mod:`~repro.lint.rules.checkpoint_rules`) — checkpoint
  serialisation only via the versioned ``repro.jobs.snapshot`` format;
- **EVT001** (:mod:`~repro.lint.rules.events_rules`) — structured run
  events only via ``repro.obs.events``, never hand-rolled JSONL writes;
- **BKD001** (:mod:`~repro.lint.rules.backend_rules`) — kernel dispatch
  in ``repro.core``/``repro.hetero`` only through the ``repro.kernels``
  entry points, never the raw implementation modules;
- **CLK002/DET003/ORD001** (:mod:`~repro.lint.rules.dataflow_rules`) —
  project-scoped interprocedural taint rules, produced by the deep pass
  (``repro check --deep``; :mod:`repro.lint.dataflow`).

To add a per-file rule: subclass :class:`repro.lint.base.Rule` in a
module here, decorate it with :func:`repro.lint.base.register`, import
the module below, and add a fixture with one violation to
``tests/data/lint_fixtures`` (project-scoped rules use
``tests/data/dataflow_fixtures`` instead).
"""

from repro.lint.rules import (
    backend_rules,
    checkpoint_rules,
    clock,
    dataflow_rules,
    determinism,
    events_rules,
    faults_rules,
    metrics_rules,
    units_rules,
)

__all__ = [
    "backend_rules",
    "checkpoint_rules",
    "clock",
    "dataflow_rules",
    "determinism",
    "events_rules",
    "faults_rules",
    "metrics_rules",
    "units_rules",
]
