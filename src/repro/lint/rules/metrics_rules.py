"""MET001/MET002 — metrics hygiene.

MET001 keeps every metric name a call site mints inside the declared
catalog (:mod:`repro.obs.catalog`) — the same catalog the runtime
registry validates against, so the static and dynamic checks cannot
drift apart.  MET002 keeps instrumentation off the hot path: every
mutating ``METRICS.*`` call must sit behind an ``if METRICS.enabled:``
gate so argument evaluation is skipped when profiling is off.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.asthelpers import literal_string
from repro.lint.base import ModuleContext, RawFinding, Rule, register
from repro.obs.catalog import FSTRING_SENTINEL, is_declared

#: METRICS method -> catalog kind it must resolve to
_KIND_OF_METHOD = {
    "inc": "counter",
    "counter": "counter",
    "set_gauge": "gauge",
    "gauge": "gauge",
    "observe": "timer",
    "timer": "timer",
    "record": "histogram",
    "histogram": "histogram",
}

#: methods that write (and therefore cost something when enabled);
#: ``timer`` is excluded from MET002 because it gates internally
_MUTATING_METHODS = frozenset({"inc", "set_gauge", "observe", "record"})


def _metrics_call(node: ast.expr) -> tuple[str, ast.Call] | None:
    """``(method, call)`` when ``node`` is ``METRICS.<method>(...)``."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "METRICS"
        and node.func.attr in _KIND_OF_METHOD
    ):
        return node.func.attr, node
    return None


@register
class MET001(Rule):
    """Metric name literals must appear in the declared catalog.

    The catalog (:mod:`repro.obs.catalog`) is the single source of
    truth for what the library emits: reports, dashboards, and the
    runtime validator all read it.  An undeclared name is a metric
    nobody will ever aggregate — it silently falls out of every
    report.  Declaring it (name, kind, unit, description) is one line.
    """

    id = "MET001"
    description = (
        "every METRICS.inc/set_gauge/observe/timer/record name literal "
        "must be declared in repro.obs.catalog (with the matching kind)"
    )
    example_violation = (
        "METRICS.inc('phase3.my_new_counter')   # not in the catalog"
    )
    example_fix = (
        "# in repro/obs/catalog.py:\n"
        "_c('phase3.my_new_counter', 'units', 'what it counts'),\n"
        "# then the call site is legal:\n"
        "METRICS.inc('phase3.my_new_counter')"
    )

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            hit = _metrics_call(node)
            if hit is None:
                continue
            method, call = hit
            if not call.args:
                continue
            name = literal_string(call.args[0])
            if name is None:
                continue  # dynamic name: the runtime validator's job
            kind = _KIND_OF_METHOD[method]
            if not is_declared(name, kind):
                shown = name.replace(FSTRING_SENTINEL, "{...}")
                reason = (
                    "declared with a different kind"
                    if is_declared(name)
                    else "not declared"
                )
                yield RawFinding(
                    call.lineno, call.col_offset,
                    f"metric {shown!r} used as a {kind} is {reason} in "
                    "repro.obs.catalog; declare it there (single source of "
                    "truth) or fix the call site",
                )


def _is_enabled_expr(test: ast.expr) -> bool:
    """``X.enabled`` (possibly one operand of an `and`)."""
    if isinstance(test, ast.Attribute) and test.attr == "enabled":
        return True
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return any(_is_enabled_expr(v) for v in test.values)
    return False


def _is_not_enabled_expr(test: ast.expr) -> bool:
    return (
        isinstance(test, ast.UnaryOp)
        and isinstance(test.op, ast.Not)
        and _is_enabled_expr(test.operand)
    )


@register
class MET002(Rule):
    """Mutating METRICS calls must be gated on ``METRICS.enabled``.

    An ungated ``METRICS.inc(f"...{x}...", expensive())`` pays its
    argument evaluation on every call even with profiling off — the
    observability layer's contract is "one branch per site when
    disabled".  The gate also reads as documentation: hot-path code
    shows exactly where its instrumentation boundary is.
    """

    id = "MET002"
    description = (
        "METRICS.inc/set_gauge/observe/record must sit behind an "
        "`if METRICS.enabled:` gate (or an early-return guard) so "
        "argument evaluation is free when profiling is off"
    )
    example_violation = (
        "METRICS.inc(f'kernels.{name}.flops', compute_flops())  # always pays"
    )
    example_fix = (
        "if METRICS.enabled:\n"
        "    METRICS.inc(f'kernels.{name}.flops', compute_flops())"
    )

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        out: list[RawFinding] = []
        self._scan_body(ctx.tree.body, False, out)
        yield from out

    # -- gated-region tracking --------------------------------------------
    def _scan_body(self, body: list[ast.stmt], gated: bool, out: list[RawFinding]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.If):
                if _is_enabled_expr(stmt.test):
                    self._scan_body(stmt.body, True, out)
                    self._scan_body(stmt.orelse, gated, out)
                    continue
                if _is_not_enabled_expr(stmt.test) and any(
                    isinstance(s, ast.Return) for s in stmt.body
                ):
                    # `if not METRICS.enabled: return` — the rest of this
                    # body only runs with metrics on
                    self._scan_body(stmt.body, gated, out)
                    self._scan_body(stmt.orelse, gated, out)
                    gated = True
                    continue
                self._scan_expr(stmt.test, gated, out)
                self._scan_body(stmt.body, gated, out)
                self._scan_body(stmt.orelse, gated, out)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                # lexical reading: a def/class inside a gated block is
                # considered gated (mutating methods early-return when
                # disabled anyway — the gate is a cost optimisation)
                self._scan_body(stmt.body, gated, out)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_expr(stmt.iter, gated, out)
                self._scan_body(stmt.body, gated, out)
                self._scan_body(stmt.orelse, gated, out)
            elif isinstance(stmt, ast.While):
                self._scan_expr(stmt.test, gated, out)
                self._scan_body(stmt.body, gated, out)
                self._scan_body(stmt.orelse, gated, out)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._scan_expr(item.context_expr, gated, out)
                self._scan_body(stmt.body, gated, out)
            elif isinstance(stmt, ast.Try):
                self._scan_body(stmt.body, gated, out)
                for handler in stmt.handlers:
                    self._scan_body(handler.body, gated, out)
                self._scan_body(stmt.orelse, gated, out)
                self._scan_body(stmt.finalbody, gated, out)
            else:
                self._scan_expr(stmt, gated, out)

    def _scan_expr(self, node: ast.AST, gated: bool, out: list[RawFinding]) -> None:
        if gated:
            return
        for sub in ast.walk(node):
            hit = _metrics_call(sub)
            if hit is None:
                continue
            method, call = hit
            if method in _MUTATING_METHODS:
                out.append(RawFinding(
                    call.lineno, call.col_offset,
                    f"ungated METRICS.{method}(...); wrap in "
                    "`if METRICS.enabled:` so the call site costs one "
                    "branch when profiling is off",
                ))
