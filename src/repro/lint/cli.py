"""The ``python -m repro check`` subcommand.

Exit codes (CI-friendly):

- **0** — no unsuppressed, unbaselined error-severity findings;
- **1** — findings (the report lists them);
- **2** — usage or environment problems (bad path, bad baseline file).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.baseline import DEFAULT_BASELINE_PATH, load_baseline, write_baseline
from repro.lint.engine import DEFAULT_ROOTS, lint_paths
from repro.lint.reporters import render_explain, render_json, render_rules, render_text
from repro.util.errors import ReproError


def add_check_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``check`` options to an (sub)parser."""
    parser.add_argument(
        "paths", nargs="*", default=None,
        help=f"files/directories to analyse (default: {', '.join(DEFAULT_ROOTS)})",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", nargs="?", const=DEFAULT_BASELINE_PATH, default=None,
        metavar="PATH",
        help="subtract a committed baseline file from the report "
             f"(default path when given bare: {DEFAULT_BASELINE_PATH})",
    )
    parser.add_argument(
        "--write-baseline", nargs="?", const=DEFAULT_BASELINE_PATH, default=None,
        metavar="PATH",
        help="write the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--no-noqa", action="store_true",
        help="ignore inline `# repro: noqa[...]` suppressions",
    )
    parser.add_argument(
        "--deep", action="store_true",
        help="also run the interprocedural dataflow pass "
             "(CLK002/DET003/ORD001) over src/repro — slower, "
             "project-wide taint tracking",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )
    parser.add_argument(
        "--explain", metavar="RULE", default=None,
        help="print one rule's rationale, a violating snippet, and the "
             "sanctioned pattern, then exit",
    )


def run_check(args: argparse.Namespace) -> int:
    """Execute ``repro check`` for parsed arguments."""
    if args.list_rules:
        print(render_rules())
        return 0

    if args.explain is not None:
        from repro.lint.base import all_rules

        wanted = args.explain.upper()
        by_id = {r.id: r for r in all_rules()}
        rule = by_id.get(wanted)
        if rule is None:
            print(
                f"repro check: unknown rule {args.explain!r}; "
                f"registered: {', '.join(sorted(by_id))}",
                file=sys.stderr,
            )
            return 2
        print(render_explain(rule))
        return 0

    paths = args.paths or None
    if paths:
        missing = [p for p in paths if not Path(p).exists()]
        if missing:
            print(f"repro check: no such path: {', '.join(missing)}", file=sys.stderr)
            return 2

    baseline = None
    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except ReproError as exc:
            print(f"repro check: {exc}", file=sys.stderr)
            return 2

    result = lint_paths(
        paths, respect_noqa=not args.no_noqa, baseline=baseline,
        deep=args.deep,
    )

    if args.write_baseline is not None:
        write_baseline(args.write_baseline, result.findings)
        print(
            f"baseline with {len(result.findings)} entr"
            f"{'y' if len(result.findings) == 1 else 'ies'} "
            f"written to {args.write_baseline}"
        )
        return 0

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return 0 if result.ok else 1


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.lint.cli``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro check",
        description="Simulation-soundness static analysis for the repro codebase.",
    )
    add_check_arguments(parser)
    return run_check(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
