"""Inline ``# repro: noqa[RULE]`` suppressions.

A finding is suppressed when the physical line it is reported on
carries a marker:

- ``# repro: noqa`` — suppress every rule on that line;
- ``# repro: noqa[DET001]`` — suppress one rule;
- ``# repro: noqa[DET001,CLK001]`` — suppress several.

Markers are per-line and deliberately narrow: there is no file-level
or block-level form, so every suppression sits next to the code it
excuses and shows up in diffs that touch it.
"""

from __future__ import annotations

import re

_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?",
)

#: sentinel for "all rules" in the suppression map
ALL_RULES = None


def suppression_map(source_lines: list[str]) -> dict[int, frozenset[str] | None]:
    """1-based line number -> suppressed rule ids (None = all rules)."""
    out: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(source_lines, start=1):
        m = _NOQA.search(line)
        if not m:
            continue
        rules = m.group("rules")
        if rules is None:
            out[lineno] = ALL_RULES
        else:
            ids = frozenset(
                r.strip().upper() for r in rules.split(",") if r.strip()
            )
            out[lineno] = ids or ALL_RULES
    return out


def is_suppressed(
    rule: str, line: int, suppressions: dict[int, frozenset[str] | None]
) -> bool:
    """Whether a finding of ``rule`` on ``line`` is suppressed."""
    if line not in suppressions:
        return False
    ids = suppressions[line]
    return ids is ALL_RULES or rule in ids
