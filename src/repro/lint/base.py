"""Core lint types: findings, severities, rules, and the registry.

A rule is a class with an ``id`` (``DET001`` …), a ``severity``, a
one-line ``description``, and a ``check(ctx)`` generator yielding
:class:`RawFinding` tuples.  Rules register themselves with the
module-level registry via the :func:`register` decorator; the engine
(:mod:`repro.lint.engine`) instantiates every registered rule per run
and turns raw findings into path-stamped :class:`Finding` records.

Severities: ``error`` findings fail ``repro check`` (exit 1);
``warning`` findings are reported but never affect the exit code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, NamedTuple

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
_SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING)


class RawFinding(NamedTuple):
    """What a rule yields: position + message, no file identity yet."""

    line: int
    col: int
    message: str


@dataclass(frozen=True)
class Finding:
    """One reported violation, fully located and attributable."""

    rule: str
    severity: str
    path: str  # posix-style path relative to the scan root
    line: int
    col: int
    message: str

    def fingerprint(self) -> str:
        """Line-number-free identity used by the baseline file, so a
        baselined finding survives unrelated edits above it."""
        return f"{self.rule}::{self.path}::{self.message}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one file under analysis."""

    path: Path
    #: posix relpath used in reports (stable across machines)
    relpath: str
    #: dotted module path, e.g. ``repro.core.hhcpu`` (best effort; the
    #: file stem when the file is outside any ``repro`` package)
    module: str
    tree: ast.Module
    source_lines: list[str] = field(default_factory=list)

    def in_package(self, *packages: str) -> bool:
        """Whether the module lives in (or under) any named package,
        given as dotted prefixes like ``"repro.core"``."""
        return any(
            self.module == p or self.module.startswith(p + ".") for p in packages
        )


#: a rule's unit of analysis: ``"file"`` rules run per module through
#: :func:`repro.lint.engine.lint_file`; ``"project"`` rules run only in
#: the interprocedural deep pass (``repro check --deep``) and are
#: skipped by the fast per-file loop
SCOPE_FILE = "file"
SCOPE_PROJECT = "project"
_SCOPES = (SCOPE_FILE, SCOPE_PROJECT)


class Rule:
    """Base class; subclasses set the class attributes and ``check``.

    Besides the machine-facing attributes, every rule documents itself
    for ``repro check --explain``: the class docstring carries the
    rationale (why the rule exists, which failure it prevents) and
    ``example_violation`` / ``example_fix`` carry a minimal violating
    snippet and its sanctioned rewrite.
    """

    id: str = ""
    severity: str = SEVERITY_ERROR
    description: str = ""
    scope: str = SCOPE_FILE
    #: minimal snippet the rule flags (shown by ``--explain``)
    example_violation: str = ""
    #: the sanctioned pattern replacing the violation
    example_fix: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        raise NotImplementedError

    def findings(self, ctx: ModuleContext) -> Iterator[Finding]:
        for raw in self.check(ctx):
            yield Finding(
                rule=self.id,
                severity=self.severity,
                path=ctx.relpath,
                line=raw.line,
                col=raw.col,
                message=raw.message,
            )


#: rule id -> rule class, in registration order
REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (import-time)."""
    if not rule_cls.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule_cls.severity not in _SEVERITIES:
        raise ValueError(
            f"rule {rule_cls.id}: severity must be one of {_SEVERITIES}, "
            f"got {rule_cls.severity!r}"
        )
    if rule_cls.scope not in _SCOPES:
        raise ValueError(
            f"rule {rule_cls.id}: scope must be one of {_SCOPES}, "
            f"got {rule_cls.scope!r}"
        )
    if rule_cls.id in REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id}")
    REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules() -> list[Rule]:
    """One instance of every registered rule, in id order."""
    import repro.lint.rules  # noqa: F401  (import populates REGISTRY)

    return [REGISTRY[rid]() for rid in sorted(REGISTRY)]
