"""The committed-baseline file: grandfathered findings.

The baseline holds :meth:`~repro.lint.base.Finding.fingerprint` strings
(rule + path + message, no line numbers, so findings survive unrelated
edits).  ``repro check --baseline`` subtracts it from the report, which
lets a new rule land with pre-existing debt tracked instead of blocking
CI — though this repo's policy (ISSUE 2) is to *fix* what a new rule
flags, so the committed baseline stays empty.

A fingerprint appearing N times in the baseline excuses at most N
matching findings; extra occurrences of the same violation are new.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.lint.base import Finding
from repro.util.errors import ReproError

BASELINE_VERSION = 1

#: the committed repo-root baseline ``repro check --baseline`` defaults to
DEFAULT_BASELINE_PATH = ".repro-lint-baseline.json"


def baseline_document(findings: list[Finding]) -> dict:
    """The JSON document capturing ``findings`` as a baseline."""
    return {
        "version": BASELINE_VERSION,
        "entries": sorted(f.fingerprint() for f in findings),
    }


def write_baseline(path: str | Path, findings: list[Finding]) -> dict:
    doc = baseline_document(findings)
    Path(path).write_text(json.dumps(doc, indent=2) + "\n")
    return doc


def load_baseline(path: str | Path) -> Counter:
    """Fingerprint -> allowance count from a baseline file."""
    try:
        doc = json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise ReproError(f"baseline file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ReproError(f"baseline file {path} is not valid JSON: {exc}") from None
    if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
        raise ReproError(
            f"baseline file {path} has unsupported version "
            f"{doc.get('version') if isinstance(doc, dict) else doc!r} "
            f"(expected {BASELINE_VERSION})"
        )
    entries = doc.get("entries", [])
    if not isinstance(entries, list) or not all(isinstance(e, str) for e in entries):
        raise ReproError(f"baseline file {path}: 'entries' must be a list of strings")
    return Counter(entries)
