"""Text and JSON reporters for lint results.

Both are deterministic: findings arrive sorted from the engine and the
JSON document sorts its keys, so reports can be committed as goldens
and diffed across runs.
"""

from __future__ import annotations

import json

from repro.lint.base import REGISTRY, all_rules
from repro.lint.engine import LintResult

REPORT_SCHEMA = "repro-lint/1"


def render_text(result: LintResult) -> str:
    """Human-oriented report: one line per finding plus a summary."""
    lines = [f.render() for f in result.findings]
    s = result.summary()
    tail = (
        f"{s['files_checked']} files checked: "
        f"{s['errors']} error(s), {s['warnings']} warning(s)"
    )
    extras = []
    if s["suppressed"]:
        extras.append(f"{s['suppressed']} suppressed by noqa")
    if s["baselined"]:
        extras.append(f"{s['baselined']} in baseline")
    if extras:
        tail += f" ({', '.join(extras)})"
    lines.append(tail)
    if s["ok"] and not result.findings:
        lines.append("ok")
    return "\n".join(lines)


def json_document(result: LintResult) -> dict:
    """The machine-readable report (schema ``repro-lint/1``)."""
    return {
        "schema": REPORT_SCHEMA,
        "summary": result.summary(),
        "findings": [f.as_dict() for f in result.findings],
    }


def render_json(result: LintResult, *, indent: int = 2) -> str:
    return json.dumps(json_document(result), indent=indent, sort_keys=True)


def render_rules() -> str:
    """The rule listing for ``repro check --list-rules``."""
    rules = all_rules()
    width = max(len(r.id) for r in rules)
    lines = [
        f"{r.id:<{width}}  [{r.severity}] {r.description}" for r in rules
    ]
    lines.append(f"{len(REGISTRY)} rules registered")
    return "\n".join(lines)
