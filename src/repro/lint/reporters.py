"""Text and JSON reporters for lint results.

Both are deterministic: findings arrive sorted from the engine and the
JSON document sorts its keys, so reports can be committed as goldens
and diffed across runs.
"""

from __future__ import annotations

import json

from repro.lint.base import REGISTRY, Rule, all_rules
from repro.lint.engine import LintResult

REPORT_SCHEMA = "repro-lint/1"


def render_text(result: LintResult) -> str:
    """Human-oriented report: one line per finding plus a summary."""
    lines = [f.render() for f in result.findings]
    s = result.summary()
    tail = (
        f"{s['files_checked']} files checked: "
        f"{s['errors']} error(s), {s['warnings']} warning(s)"
    )
    extras = []
    if s["suppressed"]:
        extras.append(f"{s['suppressed']} suppressed by noqa")
    if s["baselined"]:
        extras.append(f"{s['baselined']} in baseline")
    if extras:
        tail += f" ({', '.join(extras)})"
    lines.append(tail)
    if s["ok"] and not result.findings:
        lines.append("ok")
    return "\n".join(lines)


def json_document(result: LintResult) -> dict:
    """The machine-readable report (schema ``repro-lint/1``)."""
    return {
        "schema": REPORT_SCHEMA,
        "summary": result.summary(),
        "findings": [f.as_dict() for f in result.findings],
    }


def render_json(result: LintResult, *, indent: int = 2) -> str:
    return json.dumps(json_document(result), indent=indent, sort_keys=True)


def render_rules() -> str:
    """The rule listing for ``repro check --list-rules``."""
    rules = all_rules()
    width = max(len(r.id) for r in rules)
    lines = [
        f"{r.id:<{width}}  [{r.severity}"
        f"{', deep' if r.scope == 'project' else ''}] {r.description}"
        for r in rules
    ]
    lines.append(
        f"{len(REGISTRY)} rules registered "
        "(`deep` rules run under `repro check --deep`)"
    )
    return "\n".join(lines)


def render_explain(rule: Rule) -> str:
    """The ``repro check --explain RULE`` card for one rule instance.

    Assembled from the rule's registry attributes: the one-line
    description, the class docstring (rationale), and the
    ``example_violation`` / ``example_fix`` snippets.  The explain test
    asserts every registered rule fills all three in.
    """
    import inspect

    scope = "project-wide (runs under --deep)" if rule.scope == "project" else "per-file"
    doc = inspect.getdoc(type(rule)) or ""
    sections = [
        f"{rule.id} [{rule.severity}, {scope}]",
        rule.description,
    ]
    if doc:
        sections.append(f"\nWhy it matters:\n{doc}")
    if rule.example_violation:
        snippet = "\n".join(f"    {ln}" for ln in rule.example_violation.splitlines())
        sections.append(f"\nViolates:\n{snippet}")
    if rule.example_fix:
        snippet = "\n".join(f"    {ln}" for ln in rule.example_fix.splitlines())
        sections.append(f"\nSanctioned pattern:\n{snippet}")
    sections.append(
        f"\nSuppress a single finding with `# repro: noqa[{rule.id}]` "
        "on the reported line."
    )
    return "\n".join(sections)
