"""The interprocedural deep pass behind ``repro check --deep``.

The fast per-file rules (DET001 …, CLK001 …) are syntactic: they flag a
``perf_counter()`` *call* in simulation code, a ``set()`` *iteration*,
an unseeded Generator *construction* — in the file where it happens.
They cannot see a host-clock value returned through a chain of helpers
into a simulated-time field, an RNG leaked across a module boundary, or
set ordering laundered through a function call into a float
accumulation.  This package closes that gap with a small, deterministic
interprocedural taint analysis:

1. :mod:`~repro.lint.dataflow.model` parses every file once and builds
   a **project model**: module import maps, a table of top-level
   functions and methods by qualified name, and best-effort call
   resolution through those import maps.
2. :mod:`~repro.lint.dataflow.taint` computes a **per-function taint
   summary** (which taint kinds a function returns; which parameters
   flow to its return or into a sink) to a fixed point over the call
   graph, then re-walks every function flow-sensitively, reporting
   taint reaching a sink as a CLK002 / DET003 / ORD001 finding.

Findings flow through the exact same machinery as per-file findings:
``# repro: noqa[RULE]`` suppressions on the sink line, the committed
baseline, and the ``repro-lint/1`` reporters all apply unchanged.

The analysis is intentionally best-effort and *sound-ish*, not
complete: attribute calls on unknown objects, dynamic dispatch, and
containers are approximated.  It is a linter — its contract is "no
false positives on this codebase, catch the laundering patterns the
per-file pass provably misses", enforced by the fixture tree under
``tests/data/dataflow_fixtures``.
"""

from repro.lint.dataflow.model import FunctionInfo, ProjectModel, build_project_model
from repro.lint.dataflow.taint import TaintSummary, analyze_project

__all__ = [
    "FunctionInfo",
    "ProjectModel",
    "TaintSummary",
    "analyze_project",
    "build_project_model",
]
