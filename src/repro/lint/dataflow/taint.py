"""Interprocedural taint analysis for CLK002 / DET003 / ORD001.

Three taint kinds flow through the project:

- ``clock`` — a host wall-clock value (``time.perf_counter()`` & co),
  which must never reach a simulated-time sink: a ``.clock`` /
  ``sim_*`` field, ``set_sim``/``wait_until``/``curtail``, an event
  engine ``schedule``, a ``busy`` duration, or a ``TraceEvent``
  interval (**CLK002**);
- ``rng`` — a numpy ``Generator``.  Constructing one outside
  ``repro.util.rng`` is a violation on its own, and drawing from any
  generator inside a loop over an *unordered* container makes the draw
  sequence order-dependent (**DET003**);
- ``unordered`` — a ``set``/``frozenset`` (the only genuinely
  unordered containers; dicts iterate in deterministic insertion
  order).  Iterating one yields ``ordpos``-tainted loop variables, and
  an ``ordpos`` value reaching a float accumulation or a
  container/workqueue insertion leaks iteration order into results
  (**ORD001**).

The analysis runs in two stages over the
:class:`~repro.lint.dataflow.model.ProjectModel`:

1. **Summaries to a fixed point** — each function is abstractly
   evaluated with its parameters marked ``p0``/``p1``/…; the summary
   records which kinds (and which parameter markers) its return value
   carries and which parameters reach a sink inside it.  Summaries of
   callees feed callers, so a clock value returned through any chain
   of helpers stays tainted.
2. **Reporting walk** — every function and module body is re-walked
   with the converged summaries; concrete taint reaching a sink (or a
   tainted argument hitting a callee's parameter sink) becomes a
   violation at the sink/call line.

The evaluator is deliberately approximate: unresolved calls union
their argument kinds, ``sorted``/``min``/``max``/``len``/``np.sort``/
``np.unique`` launder order-taint, comparisons return untainted
booleans.  Everything is deterministic — functions are analysed in
sorted qualname order and findings dedup into a sorted list.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from pathlib import Path

    from repro.lint.base import Finding

from repro.lint.asthelpers import dotted_name, qualified_call_name
from repro.lint.dataflow.model import FunctionInfo, ModuleInfo, ProjectModel
from repro.lint.rules.clock import _HOST_CLOCK_CALLS as HOST_CLOCK_CALLS

#: concrete taint kinds (parameter markers are ``p{i}`` on top)
CLOCK, RNG, UNORDERED, ORDPOS = "clock", "rng", "unordered", "ordpos"

#: numpy Generator/BitGenerator constructors — sanctioned only inside
#: ``repro.util.rng``
RNG_CONSTRUCTORS = frozenset({
    "numpy.random.default_rng", "numpy.random.Generator",
    "numpy.random.RandomState", "numpy.random.PCG64",
    "numpy.random.PCG64DXSM", "numpy.random.Philox",
    "numpy.random.SFC64", "numpy.random.MT19937",
})

#: the sanctioned generator plumbing: calls here *return* rng taint
#: (so downstream misuse is tracked) but are never construction sites
SANCTIONED_RNG_PREFIX = "repro.util.rng."

#: calls whose result has a defined order regardless of input order
ORDER_LAUNDERERS = frozenset({
    "sorted", "min", "max", "len", "numpy.sort", "numpy.unique",
    "numpy.argsort", "numpy.lexsort",
})

#: attribute assignments that are simulated-time sinks
CLOCK_SINK_ATTRS = frozenset({
    "clock", "sim_start", "sim_end", "sim_duration_s", "sim_t",
})

#: keyword arguments that are simulated-time sinks on any call
CLOCK_SINK_KWARGS = frozenset({"sim_t", "sim_s", "sim_start", "sim_end"})

#: method names that accept simulated times: name -> positional arg
#: indices checked ("all" = every positional argument)
CLOCK_SINK_METHODS: dict[str, tuple[int, ...] | str] = {
    "set_sim": "all",
    "wait_until": (0,),
    "curtail": (0,),
    "schedule": (0,),
    "schedule_after": (0,),
    "busy": (2,),
}

#: container-insertion methods whose argument order is observable
#: (``set.add`` is deliberately absent: set insertion is commutative)
INSERTION_METHODS = frozenset({
    "append", "appendleft", "insert", "push", "put",
    "setdefault", "heappush", "requeue", "extend",
})

#: generator methods treated as stateful draws (any attribute call on
#: an rng-tainted receiver counts; this set only names the message)
_PARAM = "p"


def _is_marker(kind: str) -> bool:
    return kind.startswith(_PARAM) and kind[1:].isdigit()


def _concrete(kinds: frozenset[str] | set[str]) -> set[str]:
    return {k for k in kinds if not _is_marker(k)}


@dataclass(frozen=True)
class TaintSummary:
    """What one function does with taint, as seen by its callers."""

    #: kinds (+ param markers) the return value may carry
    returns: frozenset = frozenset()
    #: ``(param index, trigger kind, sink description)`` triples: a
    #: caller passing a ``trigger``-tainted argument at that index has
    #: routed taint into a sink inside this function (or deeper)
    param_sinks: frozenset = frozenset()


@dataclass(frozen=True)
class RawViolation:
    """One deep-pass finding before severity/suppression stamping."""

    rule: str
    relpath: str
    line: int
    col: int
    message: str


class _Walker:
    """Flow-sensitive walk of one function (or module) body."""

    def __init__(
        self,
        model: ProjectModel,
        owner: FunctionInfo | ModuleInfo,
        summaries: dict[str, TaintSummary],
        report: Callable[[RawViolation], None] | None,
    ) -> None:
        self.model = model
        self.owner = owner
        self.summaries = summaries
        self.report = report
        self.env: dict[str, set[str]] = {}
        self.returns: set[str] = set()
        self.param_sinks: set[tuple[int, str, str]] = set()
        #: > 0 while walking the body of a loop over an unordered iterable
        self.order_depth = 0
        self._param_index = {
            name: i for i, name in enumerate(getattr(owner, "params", []) or [])
        }
        self._module = owner.module
        self._sanctioned_rng = self._module.startswith("repro.util.rng")

    # -- plumbing ----------------------------------------------------------
    def _violate(self, node: ast.AST, rule: str, message: str) -> None:
        if self.report is not None:
            self.report(RawViolation(
                rule=rule,
                relpath=self.owner.relpath,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            ))

    def _sink(self, node: ast.AST, kinds: set[str], trigger: str,
              rule: str, desc: str) -> None:
        """Taint ``kinds`` reached a sink: report concrete taint, record
        parameter markers for the summary."""
        if trigger in kinds:
            self._violate(node, rule, desc)
        for k in kinds:
            if _is_marker(k):
                self.param_sinks.add((int(k[1:]), trigger, desc))

    # -- expression evaluation --------------------------------------------
    def eval(self, node: ast.expr | None) -> set[str]:
        if node is None:
            return set()
        m = getattr(self, f"_eval_{type(node).__name__}", None)
        if m is not None:
            return m(node)
        # default: union of child expression kinds
        out: set[str] = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out |= self.eval(child)
        return out

    def _eval_Name(self, node: ast.Name) -> set[str]:
        return set(self.env.get(node.id, ()))

    def _eval_Constant(self, node: ast.Constant) -> set[str]:
        return set()

    def _eval_Attribute(self, node: ast.Attribute) -> set[str]:
        dotted = dotted_name(node)
        if dotted is not None and dotted in self.env:
            return set(self.env[dotted])
        return self.eval(node.value)

    def _eval_Compare(self, node: ast.Compare) -> set[str]:
        self.eval(node.left)
        for c in node.comparators:
            self.eval(c)
        return set()

    def _eval_Lambda(self, node: ast.Lambda) -> set[str]:
        return set()

    def _eval_Set(self, node: ast.Set) -> set[str]:
        out = {UNORDERED}
        for e in node.elts:
            out |= self.eval(e)
        return out

    def _eval_SetComp(self, node: ast.SetComp) -> set[str]:
        out = self._eval_comprehension(node.generators, node.elt)
        return out | {UNORDERED}

    def _eval_ListComp(self, node: ast.ListComp) -> set[str]:
        return self._eval_comprehension(node.generators, node.elt)

    def _eval_GeneratorExp(self, node: ast.GeneratorExp) -> set[str]:
        return self._eval_comprehension(node.generators, node.elt)

    def _eval_DictComp(self, node: ast.DictComp) -> set[str]:
        return self._eval_comprehension(node.generators, node.key, node.value)

    def _eval_comprehension(
        self, generators: list[ast.comprehension], *elts: ast.expr
    ) -> set[str]:
        """A comprehension is a loop: unordered generators make the
        built container's order (and the bound targets) order-tainted."""
        out: set[str] = set()
        unordered = False
        for gen in generators:
            it_kinds = self.eval(gen.iter)
            if UNORDERED in it_kinds:
                unordered = True
            self._bind(gen.target, (it_kinds - {UNORDERED}) |
                       ({ORDPOS} if UNORDERED in it_kinds else set()))
            for cond in gen.ifs:
                self.eval(cond)
        if unordered:
            self.order_depth += 1
        try:
            for e in elts:
                out |= self.eval(e)
        finally:
            if unordered:
                self.order_depth -= 1
        if unordered:
            out |= {UNORDERED}
        return out

    def _eval_Subscript(self, node: ast.Subscript) -> set[str]:
        out = self.eval(node.value)
        sl = self.eval(node.slice)
        if ORDPOS in sl:
            out |= {ORDPOS}
        return out

    def _eval_Call(self, node: ast.Call) -> set[str]:  # noqa: C901
        arg_kinds = [self.eval(a) for a in node.args]
        kw_kinds = {kw.arg: self.eval(kw.value) for kw in node.keywords}
        func = node.func
        imports = self.owner.imports
        qual = qualified_call_name(node, imports)

        # simulated-time keyword sinks apply to every call
        for kw in node.keywords:
            if kw.arg in CLOCK_SINK_KWARGS:
                self._sink(
                    kw.value, kw_kinds[kw.arg], CLOCK, "CLK002",
                    f"host wall-clock value flows into simulated-time "
                    f"keyword `{kw.arg}=`; simulated fields take modelled "
                    "times only",
                )

        if qual is not None:
            if qual in HOST_CLOCK_CALLS:
                return {CLOCK}
            if qual in RNG_CONSTRUCTORS:
                if not self._sanctioned_rng:
                    self._violate(
                        node, "DET003",
                        f"numpy Generator constructed via `{qual}` outside "
                        "repro.util.rng; thread seeds through "
                        "repro.util.rng.resolve_rng/spawn_rngs",
                    )
                return {RNG}
            if qual.startswith(SANCTIONED_RNG_PREFIX):
                return {RNG}
            if qual in ("set", "frozenset"):
                out = {UNORDERED}
                for k in arg_kinds:
                    out |= k
                return out
            if qual in ORDER_LAUNDERERS:
                out: set[str] = set()
                for k in arg_kinds:
                    out |= k
                return out - {UNORDERED, ORDPOS}

        callee = self.model.resolve_call(node, self.owner)
        if callee is not None:
            return self._apply_callee(node, callee, arg_kinds, kw_kinds)

        if isinstance(func, ast.Attribute):
            recv = self.eval(func.value)
            if func.attr in CLOCK_SINK_METHODS:
                spec = CLOCK_SINK_METHODS[func.attr]
                positions = range(len(arg_kinds)) if spec == "all" else spec
                for i in positions:
                    if i < len(arg_kinds):
                        self._sink(
                            node.args[i], arg_kinds[i], CLOCK, "CLK002",
                            f"host wall-clock value flows into "
                            f"`.{func.attr}()`; this sink advances the "
                            "simulated clock/trace and takes modelled "
                            "times only",
                        )
                for kw in node.keywords:
                    if func.attr == "busy" and kw.arg == "duration":
                        self._sink(
                            kw.value, kw_kinds[kw.arg], CLOCK, "CLK002",
                            "host wall-clock value flows into a `busy("
                            "duration=)` simulated interval",
                        )
            if RNG in recv:
                # a stateful draw: nondeterministic when the enclosing
                # iteration order is undefined
                if self.order_depth > 0:
                    self._violate(
                        node, "DET003",
                        f"stateful RNG draw `.{func.attr}()` inside "
                        "iteration over an unordered container; the draw "
                        "sequence depends on set ordering — iterate "
                        "sorted(...) or draw before the loop",
                    )
                return set()
            if func.attr in ("keys", "values", "items"):
                # dict views iterate in deterministic insertion order;
                # they carry their mapping's taint but are not unordered
                return recv - {UNORDERED}
            if self.order_depth > 0 and func.attr in INSERTION_METHODS:
                for i, k in enumerate(arg_kinds):
                    self._sink(
                        node.args[i], k, ORDPOS, "ORD001",
                        "unordered iteration order flows into "
                        f"`.{func.attr}()`; the container's contents now "
                        "depend on set ordering — iterate sorted(...)",
                    )
            out = set(recv)
            for k in arg_kinds:
                out |= k
            return out

        # TraceEvent construction: start=/end= are simulated instants
        if qual is not None and qual.rsplit(".", 1)[-1] == "TraceEvent":
            for kw in node.keywords:
                if kw.arg in ("start", "end"):
                    self._sink(
                        kw.value, kw_kinds[kw.arg], CLOCK, "CLK002",
                        f"host wall-clock value flows into TraceEvent "
                        f"`{kw.arg}=`; the Trace records simulated "
                        "instants only",
                    )

        if qual == "sum":
            for i, k in enumerate(arg_kinds[:1]):
                if UNORDERED in k:
                    self._violate(
                        node, "ORD001",
                        "sum() over an unordered container: float "
                        "accumulation order follows set ordering — "
                        "sum(sorted(...)) instead",
                    )
            out = set()
            for k in arg_kinds:
                out |= k
            return out - {UNORDERED, ORDPOS}

        out = set()
        for k in arg_kinds:
            out |= k
        for k in kw_kinds.values():
            out |= k
        return out

    def _apply_callee(
        self,
        node: ast.Call,
        callee: FunctionInfo,
        arg_kinds: list[set[str]],
        kw_kinds: dict[str | None, set[str]],
    ) -> set[str]:
        """Map call arguments onto the callee's summary."""
        summary = self.summaries.get(callee.qualname, TaintSummary())
        params = callee.params
        # receiver of a self-method call occupies parameter 0
        offset = 0
        if (
            callee.cls
            and isinstance(node.func, ast.Attribute)
            and params
            and params[0] == "self"
        ):
            offset = 1
        by_index: dict[int, set[str]] = {
            i + offset: k for i, k in enumerate(arg_kinds)
        }
        for name, k in kw_kinds.items():
            if name in callee.params:
                by_index[callee.params.index(name)] = k

        out: set[str] = set()
        for kind in summary.returns:
            if _is_marker(kind):
                out |= by_index.get(int(kind[1:]), set())
            else:
                out.add(kind)
        for idx, trigger, desc in summary.param_sinks:
            kinds = by_index.get(idx, set())
            if trigger in kinds:
                rule = {CLOCK: "CLK002", RNG: "DET003"}.get(trigger, "ORD001")
                self._violate(
                    node, rule,
                    f"tainted value passed to {callee.qualname}() "
                    f"(parameter `{params[idx] if idx < len(params) else idx}`): "
                    f"{desc}",
                )
            for k in kinds:
                if _is_marker(k):
                    self.param_sinks.add((int(k[1:]), trigger, desc))
        return out

    # -- statements --------------------------------------------------------
    def _bind(self, target: ast.expr, kinds: set[str]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = set(kinds)
        elif isinstance(target, ast.Attribute):
            dotted = dotted_name(target)
            if dotted is not None:
                self.env[dotted] = set(kinds)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, kinds)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, kinds)

    def _assign_sink_check(self, target: ast.expr, value: ast.expr,
                           kinds: set[str]) -> None:
        if isinstance(target, ast.Attribute) and target.attr in CLOCK_SINK_ATTRS:
            self._sink(
                value, kinds, CLOCK, "CLK002",
                f"host wall-clock value assigned to `.{target.attr}`; "
                "simulated-clock fields take modelled times only",
            )
        if (
            self.order_depth > 0
            and isinstance(target, ast.Subscript)
        ):
            key = self.eval(target.slice)
            if ORDPOS in key or ORDPOS in kinds:
                self._sink(
                    value, key | kinds, ORDPOS, "ORD001",
                    "unordered iteration order flows into a subscript "
                    "store; insertion order now depends on set ordering "
                    "— iterate sorted(...)",
                )

    def walk(self, body: list[ast.stmt]) -> None:
        nested: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
        self._walk_block(body, nested)
        # nested defs (closures) see the enclosing bindings
        for fn in nested:
            saved = dict(self.env)
            for p in (*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs):
                self.env.pop(p.arg, None)
            inner: list = []
            self._walk_block(fn.body, inner)
            for deeper in inner:
                self._walk_block(deeper.body, [])
            self.env = saved

    def _walk_block(self, body: list[ast.stmt], nested: list) -> None:
        for stmt in body:
            self._walk_stmt(stmt, nested)

    def _walk_stmt(self, stmt: ast.stmt, nested: list) -> None:  # noqa: C901
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested.append(stmt)
        elif isinstance(stmt, ast.ClassDef):
            pass
        elif isinstance(stmt, ast.Assign):
            kinds = self.eval(stmt.value)
            for t in stmt.targets:
                self._assign_sink_check(t, stmt.value, kinds)
                self._bind(t, kinds)
        elif isinstance(stmt, ast.AnnAssign):
            kinds = self.eval(stmt.value) if stmt.value is not None else set()
            self._assign_sink_check(stmt.target, stmt.value or stmt.target, kinds)
            self._bind(stmt.target, kinds)
        elif isinstance(stmt, ast.AugAssign):
            kinds = self.eval(stmt.value)
            if (
                self.order_depth > 0
                and isinstance(stmt.op, (ast.Add, ast.Sub, ast.Mult))
            ):
                self._sink(
                    stmt.value, kinds, ORDPOS, "ORD001",
                    "accumulation over unordered iteration order: float "
                    "sums are not associative, so the total depends on "
                    "set ordering — iterate sorted(...)",
                )
            self._assign_sink_check(stmt.target, stmt.value, kinds)
            target_kinds = self.eval(stmt.target) | kinds
            self._bind(stmt.target, target_kinds)
        elif isinstance(stmt, ast.Return):
            self.returns |= self.eval(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, (ast.If,)):
            self.eval(stmt.test)
            self._walk_block(stmt.body, nested)
            self._walk_block(stmt.orelse, nested)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            it_kinds = self.eval(stmt.iter)
            unordered = UNORDERED in it_kinds
            self._bind(
                stmt.target,
                (it_kinds - {UNORDERED}) | ({ORDPOS} if unordered else set()),
            )
            if unordered:
                self.order_depth += 1
            try:
                # twice: loop-carried taint stabilises after one repeat
                self._walk_block(stmt.body, nested)
                self._walk_block(stmt.body, [])
            finally:
                if unordered:
                    self.order_depth -= 1
            self._walk_block(stmt.orelse, nested)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self._walk_block(stmt.body, nested)
            self._walk_block(stmt.body, [])
            self._walk_block(stmt.orelse, nested)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                kinds = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, kinds)
            self._walk_block(stmt.body, nested)
        elif isinstance(stmt, ast.Try):
            self._walk_block(stmt.body, nested)
            for handler in stmt.handlers:
                self._walk_block(handler.body, nested)
            self._walk_block(stmt.orelse, nested)
            self._walk_block(stmt.finalbody, nested)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)
        # Import/Pass/Break/Continue/Global/Nonlocal/Delete: no taint flow


def _analyze_function(
    model: ProjectModel,
    fn: FunctionInfo,
    summaries: dict[str, TaintSummary],
    module_env: dict[str, set[str]],
    report: Callable[[RawViolation], None] | None,
) -> TaintSummary:
    walker = _Walker(model, fn, summaries, report)
    walker.env = {k: set(v) for k, v in module_env.items()}
    for i, name in enumerate(fn.params):
        walker.env[name] = {f"{_PARAM}{i}"}
    walker.walk(fn.node.body)
    return TaintSummary(
        returns=frozenset(walker.returns),
        param_sinks=frozenset(walker.param_sinks),
    )


def _module_env(
    model: ProjectModel,
    mod: ModuleInfo,
    summaries: dict[str, TaintSummary],
    report: Callable[[RawViolation], None] | None,
) -> dict[str, set[str]]:
    walker = _Walker(model, mod, summaries, report)
    walker.walk(mod.tree.body)
    return walker.env


def compute_summaries(model: ProjectModel) -> dict[str, TaintSummary]:
    """Fixed-point taint summaries for every project function."""
    summaries: dict[str, TaintSummary] = {}
    for _ in range(10):
        changed = False
        envs = {
            name: _module_env(model, mod, summaries, None)
            for name, mod in sorted(model.modules.items())
        }
        for qualname in sorted(model.functions):
            fn = model.functions[qualname]
            new = _analyze_function(
                model, fn, summaries, envs.get(fn.module, {}), None
            )
            if summaries.get(qualname) != new:
                summaries[qualname] = new
                changed = True
        if not changed:
            break
    return summaries


def analyze_model(model: ProjectModel) -> list[RawViolation]:
    """Summaries + reporting walk over a built project model."""
    summaries = compute_summaries(model)
    found: set[RawViolation] = set()
    report = found.add
    envs = {
        name: _module_env(model, mod, summaries, report)
        for name, mod in sorted(model.modules.items())
    }
    for qualname in sorted(model.functions):
        fn = model.functions[qualname]
        _analyze_function(model, fn, summaries, envs.get(fn.module, {}), report)
    return sorted(found, key=lambda v: (v.relpath, v.line, v.col, v.rule, v.message))


def analyze_project(
    paths: list[str | Path], *, root: str | Path, respect_noqa: bool = True
) -> tuple[list[Finding], int]:
    """Run the deep pass over ``paths``; returns ``(findings, suppressed)``.

    Findings are :class:`repro.lint.base.Finding` records carrying the
    registered severity of their rule; inline ``# repro: noqa[RULE]``
    markers on the reported line suppress exactly like per-file rules.
    """
    from pathlib import Path

    from repro.lint.base import Finding, all_rules
    from repro.lint.dataflow.model import build_project_model
    from repro.lint.suppressions import is_suppressed, suppression_map

    severities = {r.id: r.severity for r in all_rules()}
    base = Path(root)
    model = build_project_model([Path(p) for p in paths], root=base)
    supp_maps = {
        mod.relpath: suppression_map(mod.source_lines)
        for mod in model.modules.values()
    }
    findings: list[Finding] = []
    suppressed = 0
    for raw in analyze_model(model):
        if respect_noqa and is_suppressed(
            raw.rule, raw.line, supp_maps.get(raw.relpath, {})
        ):
            suppressed += 1
            continue
        findings.append(Finding(
            rule=raw.rule,
            severity=severities.get(raw.rule, "error"),
            path=raw.relpath,
            line=raw.line,
            col=raw.col,
            message=raw.message,
        ))
    return findings, suppressed
