"""Project model for the deep pass: modules, functions, call resolution.

One parse per file (shared with nothing — the deep pass owns its own
walk so it can run over any file set: the real tree, a fixture tree, an
explicit path list).  The model knows every top-level function and
every method of every top-level class by **qualified name**
(``repro.hetero.scheduler.run_workqueue_phase``,
``repro.hardware.device.SimDevice.busy``) and resolves call
expressions to those names through each module's import map.

Resolution is best-effort by design: a call that cannot be resolved to
a project function simply contributes no interprocedural edge, which
makes the taint analysis under-approximate rather than noisy.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.asthelpers import dotted_name, import_map
from repro.lint.engine import iter_python_files, module_name


@dataclass
class FunctionInfo:
    """One analysable function or method."""

    #: fully qualified dotted name (module [+ class] + function)
    qualname: str
    #: dotted module the definition lives in
    module: str
    #: posix relpath of the defining file (for findings)
    relpath: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: module-level import map of the defining module
    imports: dict[str, str]
    #: enclosing class name when this is a method, else ""
    cls: str = ""

    @property
    def params(self) -> list[str]:
        a = self.node.args
        return [p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)]


@dataclass
class ModuleInfo:
    """One parsed file of the project."""

    module: str
    relpath: str
    tree: ast.Module
    imports: dict[str, str]
    source_lines: list[str] = field(default_factory=list)


@dataclass
class ProjectModel:
    """Everything the taint pass needs to see the project whole."""

    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)

    def resolve_call(self, call: ast.Call, fn: FunctionInfo | ModuleInfo) -> FunctionInfo | None:
        """The project function a call dispatches to, if determinable.

        Handles, in order: ``self.method(...)`` within the enclosing
        class, bare local names (``helper()`` in the same module), and
        dotted names resolved through the module's import map
        (``helpers.now_s()``, aliased ``from x import f as g``).
        """
        func = call.func
        cls = getattr(fn, "cls", "")
        if (
            cls
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            return self.functions.get(f"{fn.module}.{cls}.{func.attr}")
        dotted = dotted_name(func)
        if dotted is None:
            return None
        if "." not in dotted:
            # a bare name: same-module function, else an imported one
            local = self.functions.get(f"{fn.module}.{dotted}")
            if local is not None:
                return local
            origin = fn.imports.get(dotted)
            return self.functions.get(origin) if origin else None
        head, _, rest = dotted.partition(".")
        origin = fn.imports.get(head)
        qual = f"{origin}.{rest}" if origin else dotted
        return self.functions.get(qual)


def _relpath(path: Path, root: Path) -> str:
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = path
    return "/".join(rel.parts)


def build_project_model(paths: list[Path], *, root: Path) -> ProjectModel:
    """Parse every Python file under ``paths`` into one project model.

    Files that fail to parse are skipped silently here — the per-file
    engine already reports ``SYNTAX`` findings for them.
    """
    model = ProjectModel()
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError):
            continue
        module = module_name(path)
        info = ModuleInfo(
            module=module,
            relpath=_relpath(path, root),
            tree=tree,
            imports=import_map(tree),
            source_lines=source.splitlines(),
        )
        model.modules[module] = info
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fi = FunctionInfo(
                    qualname=f"{module}.{node.name}",
                    module=module,
                    relpath=info.relpath,
                    node=node,
                    imports=info.imports,
                )
                model.functions[fi.qualname] = fi
            elif isinstance(node, ast.ClassDef):
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fi = FunctionInfo(
                            qualname=f"{module}.{node.name}.{sub.name}",
                            module=module,
                            relpath=info.relpath,
                            node=sub,
                            imports=info.imports,
                            cls=node.name,
                        )
                        model.functions[fi.qualname] = fi
    return model
