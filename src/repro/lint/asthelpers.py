"""Small AST utilities shared by the lint rules."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.obs.catalog import FSTRING_SENTINEL


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None.

    Works on call targets: ``dotted_name(call.func)`` gives
    ``"np.random.default_rng"`` for ``np.random.default_rng(...)``.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def literal_string(node: ast.expr) -> str | None:
    """The value of a string literal or f-string, else None.

    F-string formatted values become :data:`FSTRING_SENTINEL` so the
    result still occupies one dot-path segment per formatted value and
    can be matched against ``{placeholder}`` catalog patterns.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts = []
        for piece in node.values:
            if isinstance(piece, ast.Constant) and isinstance(piece.value, str):
                parts.append(piece.value)
            else:
                parts.append(FSTRING_SENTINEL)
        return "".join(parts)
    return None


def import_map(tree: ast.Module) -> dict[str, str]:
    """Local name -> fully qualified origin for every import in a module.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy.random
    import default_rng as rng`` maps ``rng -> numpy.random.default_rng``.
    """
    mapping: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                mapping[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                mapping[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return mapping


def qualified_call_name(call: ast.Call, imports: dict[str, str]) -> str | None:
    """The fully qualified dotted name a call resolves to, best effort.

    Resolves the leading segment through the module's import map, so
    ``np.random.rand()`` -> ``numpy.random.rand`` and an aliased
    ``rng()`` (from ``from numpy.random import default_rng as rng``)
    -> ``numpy.random.default_rng``.
    """
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    origin = imports.get(head)
    if origin is None:
        return dotted
    return f"{origin}.{rest}" if rest else origin


def iter_loop_iterables(tree: ast.Module) -> Iterator[ast.expr]:
    """Yield every expression something iterates over: ``for`` targets
    and comprehension generators (the places set ordering leaks)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                yield gen.iter
