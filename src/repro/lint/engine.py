"""The lint engine: file discovery, rule dispatch, filtering.

:func:`lint_paths` is the one entry point: it walks the given roots
(defaulting to the repo's analysed trees), parses each Python file
once, runs every registered rule over the AST, then filters the raw
findings through inline ``# repro: noqa`` suppressions and the optional
committed baseline.  Output ordering is fully deterministic (sorted by
path, then position, then rule) so reports diff cleanly.
"""

from __future__ import annotations

import ast
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

from repro.lint.base import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
    ModuleContext,
    Rule,
    all_rules,
)
from repro.lint.suppressions import is_suppressed, suppression_map

#: trees ``repro check`` analyses when no paths are given (repo-root
#: relative; missing ones are skipped so the CLI works from a checkout
#: or an installed tree alike)
DEFAULT_ROOTS = ("src/repro", "tools", "benchmarks", "examples")

#: trees the interprocedural deep pass (``--deep``) analyses by
#: default: the library itself, where cross-module taint matters
DEEP_ROOTS = ("src/repro",)

#: directories never descended into
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "node_modules"}


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    out: set[Path] = set()
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                out.add(path)
        elif path.is_dir():
            for sub in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS or part.startswith(".")
                           for part in sub.relative_to(path).parts):
                    out.add(sub)
    return sorted(out)


def module_name(path: Path) -> str:
    """Best-effort dotted module path for scoping rules.

    Files under a ``repro`` package directory (wherever it sits — the
    real ``src/repro`` or a test fixture's ``src/repro``) get their
    dotted path from that anchor; anything else is just its stem, which
    keeps path-scoped rules (CLK001, UNIT001) out of tools/benchmarks.
    """
    parts = list(path.parts)
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        mod_parts = list(parts[anchor:])
    else:
        mod_parts = [parts[-1]]
    mod_parts[-1] = mod_parts[-1].removesuffix(".py")
    if mod_parts[-1] == "__init__":
        mod_parts.pop()
    return ".".join(mod_parts)


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    files_checked: int = 0

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity == SEVERITY_ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity == SEVERITY_WARNING)

    @property
    def ok(self) -> bool:
        """CI verdict: no unsuppressed, unbaselined errors."""
        return self.errors == 0

    def summary(self) -> dict:
        return {
            "files_checked": self.files_checked,
            "errors": self.errors,
            "warnings": self.warnings,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "ok": self.ok,
        }


def _relpath(path: Path, root: Path) -> str:
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = path
    return str(PurePosixPath(*rel.parts))


def lint_file(
    path: Path, *, root: Path, rules: list[Rule], respect_noqa: bool = True
) -> tuple[list[Finding], int]:
    """``(kept findings, suppressed count)`` for one file."""
    rel = _relpath(path, root)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                rule="SYNTAX",
                severity=SEVERITY_ERROR,
                path=rel,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
            )
        ], 0
    lines = source.splitlines()
    ctx = ModuleContext(
        path=path,
        relpath=rel,
        module=module_name(path),
        tree=tree,
        source_lines=lines,
    )
    found: list[Finding] = []
    for rule in rules:
        found.extend(rule.findings(ctx))
    if not respect_noqa:
        return found, 0
    supp = suppression_map(lines)
    kept = [f for f in found if not is_suppressed(f.rule, f.line, supp)]
    return kept, len(found) - len(kept)


def lint_paths(
    paths: list[str | Path] | None = None,
    *,
    root: str | Path | None = None,
    rules: list[Rule] | None = None,
    respect_noqa: bool = True,
    baseline: Counter | None = None,
    deep: bool = False,
) -> LintResult:
    """Run the checker over files/directories and return the result.

    Parameters
    ----------
    paths:
        Files or directories to analyse; defaults to the repo's
        :data:`DEFAULT_ROOTS` that exist under ``root``.
    root:
        Base directory findings are reported relative to (default cwd).
    rules:
        Rule instances to run (default: every registered rule).
    respect_noqa:
        Honour inline ``# repro: noqa`` markers (default True).
    baseline:
        Fingerprint allowance counts (from
        :func:`repro.lint.baseline.load_baseline`); matching findings
        are counted as ``baselined`` instead of reported.
    deep:
        Also run the interprocedural dataflow pass
        (:mod:`repro.lint.dataflow`), producing the project-scoped
        CLK002/DET003/ORD001 findings.  With default ``paths`` the
        deep pass covers :data:`DEEP_ROOTS`; with explicit paths it
        analyses exactly those (useful for fixture trees).
    """
    base = Path(root) if root is not None else Path.cwd()
    if paths is None:
        targets = [base / r for r in DEFAULT_ROOTS if (base / r).exists()]
        deep_targets = [base / r for r in DEEP_ROOTS if (base / r).exists()]
    else:
        targets = [Path(p) for p in paths]
        deep_targets = targets
    active = rules if rules is not None else all_rules()
    file_rules = [r for r in active if r.scope == "file"]

    result = LintResult()
    collected: list[Finding] = []
    for path in iter_python_files(targets):
        kept, suppressed = lint_file(
            path, root=base, rules=file_rules, respect_noqa=respect_noqa
        )
        collected.extend(kept)
        result.suppressed += suppressed
        result.files_checked += 1

    if deep and any(r.scope == "project" for r in active):
        from repro.lint.dataflow import analyze_project

        deep_findings, deep_suppressed = analyze_project(
            deep_targets, root=base, respect_noqa=respect_noqa
        )
        project_ids = {r.id for r in active if r.scope == "project"}
        collected.extend(f for f in deep_findings if f.rule in project_ids)
        result.suppressed += deep_suppressed

    if baseline:
        allowance = Counter(baseline)
        remaining: list[Finding] = []
        for finding in collected:
            fp = finding.fingerprint()
            if allowance.get(fp, 0) > 0:
                allowance[fp] -= 1
                result.baselined += 1
            else:
                remaining.append(finding)
        collected = remaining

    result.findings = sorted(
        collected, key=lambda f: (f.path, f.line, f.col, f.rule)
    )
    return result
