"""Simulation-soundness static analysis (``python -m repro check``).

An AST-based checker enforcing the invariants the reproduction's
numbers depend on, none of which the test suite can see directly:

- **DET001/DET002** — all randomness flows through
  :mod:`repro.util.rng`; nothing iterates unordered containers where
  ordering could leak into simulated schedules;
- **CLK001** — simulation code never reads host wall clocks, and
  simulated-clock values never land in host-clock span fields;
- **MET001/MET002** — every metric name is declared in
  :mod:`repro.obs.catalog` and every mutating ``METRICS`` call is
  gated on ``METRICS.enabled``;
- **UNIT001** — unit conversions happen at reporting boundaries only.

Layout: :mod:`~repro.lint.base` (types + registry),
:mod:`~repro.lint.rules` (the domain rules),
:mod:`~repro.lint.engine` (walking + filtering),
:mod:`~repro.lint.suppressions` (``# repro: noqa[RULE]``),
:mod:`~repro.lint.baseline` (grandfathered findings),
:mod:`~repro.lint.reporters` (text/JSON), :mod:`~repro.lint.cli`.
"""

from repro.lint.base import (
    REGISTRY,
    Finding,
    ModuleContext,
    RawFinding,
    Rule,
    all_rules,
    register,
)
from repro.lint.engine import DEFAULT_ROOTS, LintResult, lint_file, lint_paths
from repro.lint.reporters import json_document, render_json, render_text

__all__ = [
    "REGISTRY",
    "Finding",
    "ModuleContext",
    "RawFinding",
    "Rule",
    "all_rules",
    "register",
    "DEFAULT_ROOTS",
    "LintResult",
    "lint_file",
    "lint_paths",
    "json_document",
    "render_json",
    "render_text",
]
