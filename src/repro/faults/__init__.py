"""Deterministic fault injection for the simulated platform.

The chaos half of the robustness story: :mod:`repro.faults.spec`
declares *what* goes wrong (device crashes, stragglers, dequeue stalls,
transient PCIe and work-unit errors), :mod:`repro.faults.policy` says
how hard the platform fights back (capped exponential backoff, unit
timeouts), and :mod:`repro.faults.injector` replays the schedule
deterministically from one seed.  The scheduler, executor, and platform
consume the injector; see DESIGN.md §3d.
"""

from repro.faults.injector import FaultInjector
from repro.faults.policy import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.faults.spec import (
    DEVICE_KINDS,
    FAULT_KINDS,
    DequeueStall,
    DeviceCrash,
    FaultSpec,
    Straggler,
    TransferError,
    UnitError,
    fault_from_dict,
    load_fault_spec,
)

__all__ = [
    "FaultInjector",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "FaultSpec",
    "DeviceCrash",
    "Straggler",
    "DequeueStall",
    "TransferError",
    "UnitError",
    "fault_from_dict",
    "load_fault_spec",
    "DEVICE_KINDS",
    "FAULT_KINDS",
]
