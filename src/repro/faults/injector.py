"""The deterministic fault injector: the spec's oracle at run time.

One injector instance is attached to a platform
(:meth:`~repro.hardware.platform.HeteroPlatform.inject_faults`) and
queried at well-defined simulation boundaries:

- the scheduler asks :meth:`crashed` / :meth:`crash_time` at dequeue
  boundaries and after each work-unit attempt;
- the devices ask :meth:`slowdown` when converting workload statistics
  to modelled seconds (stragglers);
- the scheduler asks :meth:`dequeue_stall` before each dequeue;
- the platform asks :meth:`transfer_attempts` per PCIe transfer;
- the scheduler asks :meth:`unit_attempt_fails` per work-unit attempt.

All probabilistic draws come from one generator normalised through
:func:`repro.util.rng.resolve_rng` from the spec's seed, and the query
order is fully determined by the discrete-event simulation, so a
(matrix, spec, seed) triple reproduces the exact same fault schedule,
trace, and metrics bit-for-bit.  :meth:`reset` rewinds the generator
and every one-shot flag; the platform calls it from
:meth:`~repro.hardware.platform.HeteroPlatform.reset` so repeated runs
replay identically.
"""

from __future__ import annotations

from repro.faults.policy import RetryPolicy
from repro.faults.spec import FaultSpec
from repro.obs.events import EVENTS
from repro.obs.metrics import METRICS
from repro.util.rng import resolve_rng


class FaultInjector:
    """Stateful, replayable view of one :class:`FaultSpec`."""

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self.retry: RetryPolicy = spec.retry
        self.reset()

    # -- lifecycle ---------------------------------------------------------
    def reset(self) -> None:
        """Rewind to the pristine schedule (new run, identical replay)."""
        self._rng = resolve_rng(self.spec.seed)
        self._dead: dict[str, float] = {}
        self._stalls_fired: set[int] = set()
        self._transfer_errors = 0
        self._unit_errors = 0

    def state_dict(self) -> dict:
        """JSON-serialisable snapshot of the injector's mutable state.

        Captures the RNG position (``bit_generator.state``, plain Python
        ints/strings), observed crashes, fired one-shot stalls, and the
        transient-error budgets — everything :meth:`reset` rewinds — so
        a resumed job replays the *remainder* of the fault schedule
        exactly where the interrupted run left off.
        """
        return {
            "rng": self._rng.bit_generator.state,
            "dead": dict(self._dead),
            "stalls_fired": sorted(self._stalls_fired),
            "transfer_errors": self._transfer_errors,
            "unit_errors": self._unit_errors,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (inverse of it).

        The RNG is rewound by assigning ``bit_generator.state`` on the
        existing generator — no new Generator is constructed, so the
        single-seed-domain discipline (FLT001) is preserved.
        """
        self.reset()
        self._rng.bit_generator.state = state["rng"]
        self._dead = {str(k): float(v) for k, v in state["dead"].items()}
        self._stalls_fired = set(int(i) for i in state["stalls_fired"])
        self._transfer_errors = int(state["transfer_errors"])
        self._unit_errors = int(state["unit_errors"])

    # -- device crashes ----------------------------------------------------
    def crash_time(self, device: str) -> float | None:
        """When ``device`` is scheduled to die (None = never)."""
        return self.spec.crash_time(device)

    def crashed(self, device: str, now: float) -> bool:
        """Whether ``device`` is dead at simulated time ``now``."""
        at = self.spec.crash_time(device)
        return at is not None and now >= at

    def mark_dead(self, device: str, at: float) -> None:
        """Record (idempotently) that a crash was observed, for metrics
        and the :attr:`dead_devices` summary."""
        if device in self._dead:
            return
        self._dead[device] = at
        if METRICS.enabled:
            METRICS.inc("faults.crash.events")
            METRICS.set_gauge(f"faults.device.{device}.crashed_at_s", at)
        if EVENTS.enabled:
            EVENTS.emit("fault", fault="crash", device=device, sim_t=at)

    @property
    def dead_devices(self) -> tuple[str, ...]:
        """Devices whose crash has been observed, sorted by name."""
        return tuple(sorted(self._dead))

    # -- stragglers --------------------------------------------------------
    def slowdown(self, device: str, now: float) -> float:
        """Compound throughput-degradation factor active on ``device``
        at ``now`` (1.0 = healthy)."""
        factor = 1.0
        for f in self.spec.of_kind("straggler"):
            if f.device == device and now >= f.from_s:
                factor *= f.factor
        return factor

    # -- dequeue stalls ----------------------------------------------------
    def dequeue_stall(self, device: str, now: float) -> float:
        """Simulated seconds this dequeue loses to one-shot stalls whose
        trigger time has arrived; each stall fires at most once."""
        total = 0.0
        for i, f in enumerate(self.spec.faults):
            if (
                f.kind == "dequeue_stall"
                and f.device == device
                and now >= f.at_s
                and i not in self._stalls_fired
            ):
                self._stalls_fired.add(i)
                total += f.stall_s
        if total > 0:
            if METRICS.enabled:
                METRICS.inc("faults.stall.events")
                METRICS.inc("faults.stall.seconds", total)
            if EVENTS.enabled:
                EVENTS.emit(
                    "fault", fault="dequeue_stall", device=device,
                    stall_s=total, sim_t=now,
                )
        return total

    # -- transient errors --------------------------------------------------
    def _transient_fails(self, probability: float, budget: int, used: int) -> bool:
        if probability <= 0.0:
            return False
        if budget and used >= budget:
            return False
        return bool(self._rng.random() < probability)

    def transfer_attempts(self) -> int:
        """How many tries this PCIe transfer needs (1 = clean).  Bounded
        by the retry policy's attempt budget — the last permitted
        attempt always succeeds (PCIe errors here are transient by
        definition; a permanently dead link would be a crash)."""
        attempts = 1
        for f in self.spec.of_kind("transfer_error"):
            while (
                attempts < self.retry.max_attempts
                and self._transient_fails(
                    f.probability, f.max_errors, self._transfer_errors
                )
            ):
                self._transfer_errors += 1
                attempts += 1
        if attempts > 1:
            if METRICS.enabled:
                METRICS.inc("faults.transfer.errors", attempts - 1)
            if EVENTS.enabled:
                EVENTS.emit("fault", fault="transfer_error", errors=attempts - 1)
        return attempts

    def unit_attempt_fails(self, device: str) -> bool:
        """Whether this work-unit attempt on ``device`` is hit by a
        transient fault (the scheduler handles requeue + backoff)."""
        for f in self.spec.of_kind("unit_error"):
            if f.device == device and self._transient_fails(
                f.probability, f.max_errors, self._unit_errors
            ):
                self._unit_errors += 1
                if METRICS.enabled:
                    METRICS.inc("faults.unit.errors")
                if EVENTS.enabled:
                    EVENTS.emit("fault", fault="unit_error", device=device)
                return True
        return False
