"""Retry policy: capped exponential backoff in *simulated* time.

One policy governs every recovery mechanism of the degradation layer —
work-unit re-execution after a transient fault or timeout, and PCIe
transfer retries — so a single spec knob tunes how aggressively the
platform fights back.  All delays are simulated seconds charged to the
retrying timeline; nothing here touches host clocks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import FaultError


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff over a bounded number of attempts.

    Parameters
    ----------
    max_attempts:
        Total tries per work item (first attempt included).  When the
        budget is exhausted the scheduler stops abandoning attempts and
        lets the item run to completion, so progress is guaranteed even
        under a pathological fault schedule.
    base_delay_s:
        Simulated backoff before the second attempt.
    multiplier:
        Growth factor per further failed attempt.
    max_delay_s:
        Cap on any single backoff delay.
    unit_timeout_s:
        Abandon a Phase III work-unit attempt after this many simulated
        seconds and requeue it; ``None`` disables timeouts.
    """

    max_attempts: int = 4
    base_delay_s: float = 1e-4
    multiplier: float = 2.0
    max_delay_s: float = 1e-2
    unit_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0:
            raise FaultError(f"base_delay_s must be >= 0, got {self.base_delay_s}")
        if self.multiplier < 1.0:
            raise FaultError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay_s < self.base_delay_s:
            raise FaultError(
                f"max_delay_s ({self.max_delay_s}) must be >= base_delay_s "
                f"({self.base_delay_s})"
            )
        if self.unit_timeout_s is not None and self.unit_timeout_s <= 0:
            raise FaultError(
                f"unit_timeout_s must be positive, got {self.unit_timeout_s}"
            )

    def backoff_s(self, failed_attempts: int) -> float:
        """Simulated delay before the next try after ``failed_attempts``
        failures (1 failure -> ``base_delay_s``, then x ``multiplier``)."""
        if failed_attempts < 1:
            return 0.0
        return min(
            self.base_delay_s * self.multiplier ** (failed_attempts - 1),
            self.max_delay_s,
        )

    def total_backoff_s(self, failed_attempts: int) -> float:
        """Sum of backoff delays a retry loop pays after that many failures."""
        return sum(self.backoff_s(i) for i in range(1, failed_attempts + 1))

    def as_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "base_delay_s": self.base_delay_s,
            "multiplier": self.multiplier,
            "max_delay_s": self.max_delay_s,
            "unit_timeout_s": self.unit_timeout_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        unknown = set(data) - {
            "max_attempts", "base_delay_s", "multiplier", "max_delay_s",
            "unit_timeout_s",
        }
        if unknown:
            raise FaultError(f"unknown retry-policy fields: {sorted(unknown)}")
        return cls(**data)


#: policy applied when a fault spec gives none
DEFAULT_RETRY_POLICY = RetryPolicy()
