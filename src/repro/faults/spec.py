"""Fault specifications: what goes wrong, where, and when.

A :class:`FaultSpec` is a declarative, JSON-serialisable schedule of
injectable faults plus the retry policy the platform fights back with.
The JSON document shape (see README "Fault injection & degradation")::

    {
      "seed": 7,
      "retry": {"max_attempts": 4, "base_delay_s": 1e-4, "multiplier": 2.0,
                "max_delay_s": 1e-2, "unit_timeout_s": null},
      "faults": [
        {"kind": "device_crash",  "device": "gpu", "at_s": 0.5},
        {"kind": "straggler",     "device": "cpu", "from_s": 0.1, "factor": 3.0},
        {"kind": "dequeue_stall", "device": "cpu", "at_s": 0.2, "stall_s": 0.05},
        {"kind": "transfer_error", "probability": 0.2, "max_errors": 10},
        {"kind": "unit_error", "device": "gpu", "probability": 0.1, "max_errors": 5}
      ]
    }

Every field is validated on construction so a bad chaos config fails at
load time, not three phases into a simulation.  The probabilistic kinds
(``transfer_error``, ``unit_error``) draw from one seeded generator
owned by the :class:`~repro.faults.injector.FaultInjector`, so a spec +
seed pins the entire fault schedule bit-for-bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.faults.policy import RetryPolicy
from repro.util.errors import FaultError

#: device kinds faults may target
DEVICE_KINDS = ("cpu", "gpu")

#: injectable fault kinds (see the README table)
FAULT_KINDS = (
    "device_crash", "straggler", "dequeue_stall", "transfer_error", "unit_error",
)


@dataclass(frozen=True)
class DeviceCrash:
    """The device dies at ``at_s`` simulated seconds; in-flight work is
    lost and the survivor drains the dead device's end of the queue."""

    device: str
    at_s: float
    kind: str = field(default="device_crash", init=False)

    def __post_init__(self) -> None:
        _check_device(self.device)
        if self.at_s < 0:
            raise FaultError(f"crash at_s must be >= 0, got {self.at_s}")

    def as_dict(self) -> dict:
        return {"kind": self.kind, "device": self.device, "at_s": self.at_s}


@dataclass(frozen=True)
class Straggler:
    """From ``from_s`` onwards the device computes ``factor`` x slower
    (throughput degradation; transfers are unaffected)."""

    device: str
    factor: float
    from_s: float = 0.0
    kind: str = field(default="straggler", init=False)

    def __post_init__(self) -> None:
        _check_device(self.device)
        if self.factor < 1.0:
            raise FaultError(f"straggler factor must be >= 1, got {self.factor}")
        if self.from_s < 0:
            raise FaultError(f"straggler from_s must be >= 0, got {self.from_s}")

    def as_dict(self) -> dict:
        return {
            "kind": self.kind, "device": self.device,
            "factor": self.factor, "from_s": self.from_s,
        }


@dataclass(frozen=True)
class DequeueStall:
    """The device's first dequeue at or after ``at_s`` loses ``stall_s``
    simulated seconds (a one-shot synchronisation hiccup)."""

    device: str
    at_s: float
    stall_s: float
    kind: str = field(default="dequeue_stall", init=False)

    def __post_init__(self) -> None:
        _check_device(self.device)
        if self.at_s < 0:
            raise FaultError(f"stall at_s must be >= 0, got {self.at_s}")
        if self.stall_s <= 0:
            raise FaultError(f"stall_s must be positive, got {self.stall_s}")

    def as_dict(self) -> dict:
        return {
            "kind": self.kind, "device": self.device,
            "at_s": self.at_s, "stall_s": self.stall_s,
        }


@dataclass(frozen=True)
class TransferError:
    """Each PCIe transfer attempt fails with ``probability``; a failed
    attempt wastes its wire time and retries after backoff.  At most
    ``max_errors`` errors are injected in total (0 = unbounded)."""

    probability: float
    max_errors: int = 0
    kind: str = field(default="transfer_error", init=False)

    def __post_init__(self) -> None:
        if not (0.0 <= self.probability < 1.0):
            raise FaultError(
                f"transfer-error probability must be in [0, 1), got "
                f"{self.probability}"
            )
        if self.max_errors < 0:
            raise FaultError(f"max_errors must be >= 0, got {self.max_errors}")

    def as_dict(self) -> dict:
        return {
            "kind": self.kind, "probability": self.probability,
            "max_errors": self.max_errors,
        }


@dataclass(frozen=True)
class UnitError:
    """Each Phase III work-unit attempt on ``device`` fails transiently
    with ``probability``; the attempt's compute is lost and the unit is
    requeued.  At most ``max_errors`` errors in total (0 = unbounded)."""

    device: str
    probability: float
    max_errors: int = 0
    kind: str = field(default="unit_error", init=False)

    def __post_init__(self) -> None:
        _check_device(self.device)
        if not (0.0 <= self.probability < 1.0):
            raise FaultError(
                f"unit-error probability must be in [0, 1), got "
                f"{self.probability}"
            )
        if self.max_errors < 0:
            raise FaultError(f"max_errors must be >= 0, got {self.max_errors}")

    def as_dict(self) -> dict:
        return {
            "kind": self.kind, "device": self.device,
            "probability": self.probability, "max_errors": self.max_errors,
        }


Fault = DeviceCrash | Straggler | DequeueStall | TransferError | UnitError

_FAULT_CLASSES = {
    "device_crash": DeviceCrash,
    "straggler": Straggler,
    "dequeue_stall": DequeueStall,
    "transfer_error": TransferError,
    "unit_error": UnitError,
}


def _check_device(device: str) -> None:
    if device not in DEVICE_KINDS:
        raise FaultError(
            f"fault device must be one of {DEVICE_KINDS}, got {device!r}"
        )


def fault_from_dict(data: dict) -> Fault:
    """Build one fault entry from its JSON dict."""
    if not isinstance(data, dict):
        raise FaultError(f"fault entry must be an object, got {type(data).__name__}")
    kind = data.get("kind")
    cls = _FAULT_CLASSES.get(kind)
    if cls is None:
        raise FaultError(
            f"unknown fault kind {kind!r}; choose from {FAULT_KINDS}"
        )
    fields = {k: v for k, v in data.items() if k != "kind"}
    try:
        return cls(**fields)
    except TypeError as exc:
        raise FaultError(f"bad {kind} fault entry: {exc}") from None


@dataclass(frozen=True)
class FaultSpec:
    """A complete, validated fault schedule."""

    faults: tuple[Fault, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise FaultError(f"seed must be non-negative, got {self.seed}")
        crashes: set[str] = set()
        for f in self.faults:
            if isinstance(f, DeviceCrash):
                if f.device in crashes:
                    raise FaultError(
                        f"duplicate device_crash for {f.device!r}; a device "
                        "dies at most once"
                    )
                crashes.add(f.device)

    # -- queries -----------------------------------------------------------
    def of_kind(self, kind: str) -> tuple[Fault, ...]:
        """Every fault entry of the given kind, in spec order."""
        return tuple(f for f in self.faults if f.kind == kind)

    def crash_time(self, device: str) -> float | None:
        """When ``device`` dies, or None if it never crashes."""
        for f in self.of_kind("device_crash"):
            if f.device == device:
                return f.at_s
        return None

    # -- (de)serialisation -------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "retry": self.retry.as_dict(),
            "faults": [f.as_dict() for f in self.faults],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        if not isinstance(data, dict):
            raise FaultError(
                f"fault spec must be an object, got {type(data).__name__}"
            )
        unknown = set(data) - {"seed", "retry", "faults"}
        if unknown:
            raise FaultError(f"unknown fault-spec fields: {sorted(unknown)}")
        faults = data.get("faults", [])
        if not isinstance(faults, list):
            raise FaultError("fault-spec 'faults' must be a list")
        retry_data = data.get("retry")
        retry = (
            RetryPolicy.from_dict(retry_data)
            if retry_data is not None
            else RetryPolicy()
        )
        return cls(
            faults=tuple(fault_from_dict(f) for f in faults),
            retry=retry,
            seed=int(data.get("seed", 0)),
        )


def load_fault_spec(path: str | Path) -> FaultSpec:
    """Load and validate a fault-spec JSON document from disk."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise FaultError(f"fault spec not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise FaultError(f"fault spec {path} is not valid JSON: {exc}") from None
    return FaultSpec.from_dict(data)
