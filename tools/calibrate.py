"""Calibration harness: prints paper-anchor diagnostics for a candidate
Calibration, over a subset (or all) of the Table I twins.

Usage: python tools/calibrate.py [--all] [key=value ...]

Paper anchors (see costmodel/calibration.py):
  - HH-CPU vs HiPC2012 average ~= 1.25x (higher for low alpha)
  - HH-CPU vs Unsorted/Sorted-Workqueue ~= 1.15x
  - HH-CPU vs MKL ~= 3.6x, vs cuSPARSE ~= 4x
  - Phase I+IV <= ~4% of HH-CPU total
  - CPU/GPU per-phase gap small (~2%)
"""

import sys
import time  # repro: noqa[DET001] — calibration measures real host wall time

from repro.costmodel import DEFAULT_CALIBRATION
from repro.hardware import default_platform
from repro.hardware.platform import platform_for_scale
from repro.scalefree.datasets import dataset_scale
from repro.scalefree import load_dataset, TABLE_I
from repro.core import HHCPU
from repro.baselines import (
    CPUOnly,
    CuSparseModel,
    GPUOnly,
    HiPC2012,
    MKLModel,
    SortedWorkqueue,
    UnsortedWorkqueue,
)

SUBSET = ["webbase-1M", "web-Google", "wiki-Vote", "email-Enron", "roadNet-CA", "cop20kA"]


def main() -> None:
    args = sys.argv[1:]
    names = list(TABLE_I) if "--all" in args else SUBSET
    overrides = {}
    for arg in args:
        if "=" in arg:
            k, v = arg.split("=", 1)
            overrides[k] = type(getattr(DEFAULT_CALIBRATION, k))(float(v))
    calib = DEFAULT_CALIBRATION.with_overrides(**overrides)

    def units(scale):
        return dict(cpu_rows=max(100, round(1000 * scale * 10)),
                    gpu_rows=max(1000, round(10000 * scale * 10)))

    algos = {
        "hh": lambda pf, u: HHCPU(pf, **u),
        "hipc": lambda pf, u: HiPC2012(pf),
        "unsorted": lambda pf, u: UnsortedWorkqueue(pf, **u),
        "sorted": lambda pf, u: SortedWorkqueue(pf, **u),
        "cpu": lambda pf, u: CPUOnly(pf),
        "gpu": lambda pf, u: GPUOnly(pf),
        "mkl": lambda pf, u: MKLModel(pf),
        "cusparse": lambda pf, u: CuSparseModel(pf),
    }
    header = (
        f"{'matrix':16s} {'hh(ms)':>9s} {'v.hipc':>7s} {'v.uns':>6s} {'v.srt':>6s} "
        f"{'v.mkl':>6s} {'v.cusp':>7s} {'v.cpu':>6s} {'v.gpu':>6s} {'I+IV%':>6s} {'alpha':>7s}"
    )
    print(header)
    sums = {k: 0.0 for k in ("hipc", "unsorted", "sorted", "mkl", "cusparse", "cpu", "gpu")}
    t0 = time.time()
    for name in names:
        tw = load_dataset(name)
        scale = dataset_scale(TABLE_I[name], None)
        res = {}
        u = units(scale)
        for key, make in algos.items():
            pf = platform_for_scale(scale, calib)
            res[key] = make(pf, u).multiply(tw, tw)
        hh = res["hh"]
        sp = {k: hh.speedup_over(res[k]) for k in sums}
        for k in sums:
            sums[k] += sp[k]
        p14 = (hh.phase_times.get("I", 0) + hh.phase_times.get("IV", 0)) / hh.total_time
        print(
            f"{name:16s} {hh.total_time*1e3:9.2f} {sp['hipc']:7.2f} {sp['unsorted']:6.2f} "
            f"{sp['sorted']:6.2f} {sp['mkl']:6.2f} {sp['cusparse']:7.2f} {sp['cpu']:6.2f} "
            f"{sp['gpu']:6.2f} {100*p14:6.1f} {TABLE_I[name].alpha_paper:7.1f}"
        )
    n = len(names)
    print("-" * len(header))
    print(
        f"{'AVERAGE':16s} {'':9s} {sums['hipc']/n:7.2f} {sums['unsorted']/n:6.2f} "
        f"{sums['sorted']/n:6.2f} {sums['mkl']/n:6.2f} {sums['cusparse']/n:7.2f} "
        f"{sums['cpu']/n:6.2f} {sums['gpu']/n:6.2f}"
    )
    print(f"(wall: {time.time()-t0:.1f}s)  overrides: {overrides}")


if __name__ == "__main__":
    main()
